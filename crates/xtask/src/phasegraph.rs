//! Interprocedural phase-graph analysis: the static collective-protocol
//! verifier behind rules `R4`/`R5` and the `xtask protocol` subcommand.
//!
//! The distributed solver is a lockstep BSP computation: every rank must
//! execute the *identical* sequence of collectives (exchange/finish, the
//! allreduce family, shutdown) or the run deadlocks or silently corrupts
//! state — the dominant hazard reported for parallel Louvain (Section
//! IV-C of the paper; the same class PR 2's dynamic shadow checker
//! catches at run time). This module proves the communication skeleton
//! at analysis time:
//!
//! 1. a brace/scope-aware pass over the stripped token stream extracts,
//!    per function, the ordered collective-operation sequence as a
//!    protocol summary with sequence/branch/loop structure;
//! 2. a workspace call graph composes summaries interprocedurally from
//!    the solver entry point (`rank_main` in `crates/core/src/parallel.rs`)
//!    down through `crates/runtime`;
//! 3. two semantic rules generalize the syntactic `R2`:
//!    * **R4** — a conditional whose condition depends on rank-local
//!      data must have equal protocol effect on every arm (including
//!      early exits: a divergent `return`/`break` that skips later
//!      collectives on some ranks only);
//!    * **R5** — no collective inside a loop whose trip count is not
//!      derived from a replicated/allreduced value.
//!
//! The canonicalized entry-point protocol is emitted as the
//! schema-versioned lockfile `results/protocol_spec.json`
//! (`xtask protocol`, with `--check` diffing against the committed
//! spec), and [`Nfa`] turns the spec into an acceptor so the runtime's
//! recorded collective sequences can be conformance-checked end to end.
//!
//! Like the lint engine, everything here is std-only and token-based:
//! no `syn`, no type information. The taint analysis is therefore a
//! documented heuristic: the token `rank`, the `.rank()` accessor, and
//! anything assigned from them are rank-local; *call results* are
//! treated as replicated (collectives return replicated values by
//! construction, and the false-positive cost of the opposite default
//! would be prohibitive).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lint::{
    block_end, code_stream_masked, is_ident_char, keyword_at, matches_at, scan_lines, skip_ws,
    test_region_mask, walk, Rule,
};

/// Schema version of `results/protocol_spec.json`. Bump when the node
/// grammar or the JSON layout changes.
pub const PROTOCOL_SPEC_SCHEMA_VERSION: u32 = 1;

/// File holding the solver entry point whose protocol becomes the spec.
pub const PROTOCOL_ENTRY_FILE: &str = "crates/core/src/parallel.rs";

/// Name of the entry-point function (the per-rank driver, Algorithm 2).
pub const PROTOCOL_ENTRY_FN: &str = "rank_main";

/// Directories scanned when composing the workspace-level spec. Fixed
/// order keeps the extraction byte-stable.
const SPEC_DIRS: [&str; 6] = [
    "crates/core/src",
    "crates/runtime/src",
    "crates/graph/src",
    "crates/hashtable/src",
    "crates/metrics/src",
    "crates/trace/src",
];

/// The collective surface of the runtime's `RankCtx`/`Exchange` API:
/// method name → the `CollectiveKind` sequence its call records (each
/// kind is one `enter_collective`, confirmed against the runtime
/// source). `exchange` opens a phase but records nothing; `finish`
/// records the `Exchange` plus the closing `SimSync`.
pub(crate) const BUILTIN_EFFECTS: [(&str, &[&str]); 18] = [
    ("barrier", &["Barrier"]),
    ("allreduce_sum", &["ReduceF64", "SimSync"]),
    ("allreduce_max", &["ReduceF64", "SimSync"]),
    ("allreduce_min", &["ReduceF64", "SimSync"]),
    ("allreduce_sum_u64", &["ReduceU64", "SimSync"]),
    ("allreduce_max_u64", &["ReduceU64", "SimSync"]),
    ("allreduce_any", &["ReduceU64", "SimSync"]),
    ("allreduce_all", &["ReduceU64", "SimSync"]),
    ("allreduce_sum_vec", &["AllreduceSumVec", "SimSync"]),
    ("allgather_f64", &["AllgatherF64", "SimSync"]),
    ("gather_f64", &["AllgatherF64", "SimSync"]),
    ("broadcast_f64", &["BroadcastF64", "SimSync"]),
    ("exscan_sum_u64", &["ExscanSumU64", "SimSync"]),
    ("scan_sum_u64", &["ExscanSumU64", "SimSync"]),
    ("sim_sync", &["SimSync"]),
    ("sim_time_units", &["SimSync"]),
    ("finish", &["Exchange", "SimSync"]),
    ("exchange", &[]),
];

/// Rust keywords the identifier passes must not mistake for variables.
const KEYWORDS: [&str; 29] = [
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "true", "while",
];

pub(crate) fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
        || w == "self"
        || w == "Self"
        || w == "super"
        || w == "use"
        || w == "where"
}

// ---------------------------------------------------------------------------
// The canonical protocol grammar.
// ---------------------------------------------------------------------------

/// One node of a canonicalized protocol summary. Fields are public so
/// tests can build seeded mutations of the spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecNode {
    /// One collective operation (a `CollectiveKind` name such as
    /// `"ReduceF64"`), exactly as the runtime's shadow state records it.
    Op(String),
    /// A call to a solver-crate function with protocol effect, kept as a
    /// named group so the spec stays readable and diffable.
    Call {
        /// Callee name as it appears at the call site.
        name: String,
        /// The callee's canonicalized protocol summary.
        body: Vec<SpecNode>,
    },
    /// A conditional with per-arm protocol summaries (an implicit empty
    /// arm represents a missing `else`). Only kept when the arms differ.
    Branch(Vec<Vec<SpecNode>>),
    /// A loop body executed zero or more times. Only kept when the body
    /// has protocol effect.
    Loop(Vec<SpecNode>),
    /// `break` out of the innermost enclosing loop.
    Break,
    /// `continue` with the innermost enclosing loop.
    Continue,
    /// Early exit from the enclosing function (`return` or `?`).
    Return,
}

/// The extracted workspace protocol: the entry point's canonicalized
/// collective skeleton, serialized as the spec lockfile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// `file::function` the protocol was composed from.
    pub entry: String,
    /// Canonicalized protocol nodes, ending in the runtime's implicit
    /// `Shutdown` collective.
    pub protocol: Vec<SpecNode>,
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push(' ');
    }
}

fn write_node(out: &mut String, node: &SpecNode, indent: usize) {
    match node {
        SpecNode::Op(kind) => {
            out.push('"');
            out.push_str(kind);
            out.push('"');
        }
        SpecNode::Break => out.push_str("\"!break\""),
        SpecNode::Continue => out.push_str("\"!continue\""),
        SpecNode::Return => out.push_str("\"!return\""),
        SpecNode::Call { name, body } => {
            out.push_str("{\"call\": \"");
            out.push_str(name);
            out.push_str("\", \"body\": ");
            write_nodes(out, body, indent);
            out.push('}');
        }
        SpecNode::Branch(arms) => {
            out.push_str("{\"branch\": [\n");
            for (i, arm) in arms.iter().enumerate() {
                pad(out, indent + 2);
                write_nodes(out, arm, indent + 2);
                if i + 1 < arms.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push_str("]}");
        }
        SpecNode::Loop(body) => {
            out.push_str("{\"loop\": ");
            write_nodes(out, body, indent);
            out.push('}');
        }
    }
}

fn write_nodes(out: &mut String, nodes: &[SpecNode], indent: usize) {
    if nodes.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, node) in nodes.iter().enumerate() {
        pad(out, indent + 2);
        write_node(out, node, indent + 2);
        if i + 1 < nodes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    pad(out, indent);
    out.push(']');
}

impl ProtocolSpec {
    /// Serialize as the pretty-printed, byte-stable spec lockfile
    /// (std-only writer; 2-space indent, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {PROTOCOL_SPEC_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!("  \"entry\": \"{}\",\n", self.entry));
        out.push_str("  \"protocol\": ");
        write_nodes(&mut out, &self.protocol, 2);
        out.push_str("\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// NFA acceptor: turns the spec into a checker for observed sequences.
// ---------------------------------------------------------------------------

/// A Thompson-construction NFA over collective-kind names, built from a
/// [`ProtocolSpec`]. The dynamic conformance tests feed the runtime's
/// recorded per-rank sequences through [`Nfa::accepts`].
pub struct Nfa {
    /// ε-transitions per state.
    eps: Vec<Vec<usize>>,
    /// Labeled transitions per state: `(kind name, target)`.
    edges: Vec<Vec<(String, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn new_state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.edges.push(Vec::new());
        self.eps.len() - 1
    }

    /// Compile `nodes` starting at `from`; returns the end state.
    /// `ret` is where `Return` jumps (function/call exit); `loops` holds
    /// `(entry, exit)` states of enclosing loops for `Continue`/`Break`.
    fn compile(
        &mut self,
        nodes: &[SpecNode],
        mut from: usize,
        ret: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        for node in nodes {
            match node {
                SpecNode::Op(kind) => {
                    let next = self.new_state();
                    self.edges[from].push((kind.clone(), next));
                    from = next;
                }
                SpecNode::Call { body, .. } => {
                    // A call's `Return` exits the callee, not the caller,
                    // and its loop context starts empty.
                    let join = self.new_state();
                    let end = self.compile(body, from, join, &mut Vec::new());
                    self.eps[end].push(join);
                    from = join;
                }
                SpecNode::Branch(arms) => {
                    let join = self.new_state();
                    for arm in arms {
                        let end = self.compile(arm, from, ret, loops);
                        self.eps[end].push(join);
                    }
                    from = join;
                }
                SpecNode::Loop(body) => {
                    let entry = self.new_state();
                    let exit = self.new_state();
                    self.eps[from].push(entry);
                    self.eps[entry].push(exit); // zero iterations
                    loops.push((entry, exit));
                    let end = self.compile(body, entry, ret, loops);
                    loops.pop();
                    self.eps[end].push(entry); // next iteration
                    from = exit;
                }
                SpecNode::Break => {
                    if let Some(&(_, exit)) = loops.last() {
                        self.eps[from].push(exit);
                    }
                    from = self.new_state(); // dead: nothing follows
                }
                SpecNode::Continue => {
                    if let Some(&(entry, _)) = loops.last() {
                        self.eps[from].push(entry);
                    }
                    from = self.new_state();
                }
                SpecNode::Return => {
                    self.eps[from].push(ret);
                    from = self.new_state();
                }
            }
        }
        from
    }

    /// Build the acceptor for a spec. The trailing `Shutdown` op is the
    /// function-exit collective: `Return` paths join right before it, so
    /// an early return still shuts down exactly once.
    #[must_use]
    pub fn from_spec(spec: &ProtocolSpec) -> Nfa {
        let mut nfa = Nfa {
            eps: Vec::new(),
            edges: Vec::new(),
            start: 0,
            accept: 0,
        };
        let start = nfa.new_state();
        nfa.start = start;
        let fn_exit = nfa.new_state();
        let body = match spec.protocol.last() {
            Some(SpecNode::Op(k)) if k == "Shutdown" => &spec.protocol[..spec.protocol.len() - 1],
            _ => &spec.protocol[..],
        };
        let end = nfa.compile(body, start, fn_exit, &mut Vec::new());
        nfa.eps[end].push(fn_exit);
        let accept = nfa.new_state();
        nfa.edges[fn_exit].push(("Shutdown".to_string(), accept));
        nfa.accept = accept;
        nfa
    }

    fn closure(&self, states: &mut BTreeSet<usize>) {
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if states.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    /// Does the NFA accept the observed sequence of collective-kind
    /// names (e.g. the runtime's recorded per-rank log, stringified)?
    pub fn accepts<S: AsRef<str>>(&self, seq: &[S]) -> bool {
        let mut states = BTreeSet::from([self.start]);
        self.closure(&mut states);
        for sym in seq {
            let sym = sym.as_ref();
            let mut next = BTreeSet::new();
            for &s in &states {
                for (label, target) in &self.edges[s] {
                    if label == sym {
                        next.insert(*target);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            self.closure(&mut next);
            states = next;
        }
        states.contains(&self.accept)
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing: functions, assignments, taint, and the walker
// that turns a function body into a protocol-summary tree.
// ---------------------------------------------------------------------------

pub(crate) type Stream = [(char, usize)];

/// Internal (pre-canonicalization) summary node, one per function body.
#[derive(Clone, Debug, PartialEq, Eq)]
enum PNode {
    /// A collective op (kind name) recorded at this line.
    Op(String, usize),
    /// An unresolved call site.
    Call {
        name: String,
        method: bool,
        line: usize,
    },
    /// A conditional; `tainted` = condition reads rank-local data.
    Branch {
        arms: Vec<Vec<PNode>>,
        tainted: bool,
        line: usize,
    },
    /// A loop; `tainted` = header reads rank-local data.
    Loop {
        body: Vec<PNode>,
        tainted: bool,
        line: usize,
    },
    Break,
    Continue,
    Return,
}

/// One function found in a file's stream.
#[derive(Clone, Debug)]
pub(crate) struct FnDef {
    pub(crate) name: String,
    pub(crate) line: usize,
    pub(crate) has_self: bool,
    /// Index of the parameter-list `(` in the stream.
    pub(crate) params_open: usize,
    /// Index one past the parameter-list `)`.
    pub(crate) params_end: usize,
    pub(crate) body_open: usize,
    pub(crate) body_end: usize,
}

/// Read the identifier starting at `i`; empty if none.
pub(crate) fn read_word(stream: &Stream, i: usize) -> String {
    let mut w = String::new();
    let mut j = i;
    while let Some(&(c, _)) = stream.get(j) {
        if is_ident_char(c) {
            w.push(c);
            j += 1;
        } else {
            break;
        }
    }
    w
}

/// Index one past the `)`/`]` matching the opener at `open`.
pub(crate) fn match_paren(stream: &Stream, open: usize) -> usize {
    let (open_c, _) = stream[open];
    let close_c = match open_c {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        _ => return open + 1,
    };
    let mut depth = 0i32;
    let mut i = open;
    while let Some(&(c, _)) = stream.get(i) {
        if c == open_c {
            depth += 1;
        } else if c == close_c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    stream.len()
}

/// Is the character at `i` preceded by an identifier character (so a
/// keyword/identifier match at `i` would really be a suffix)?
pub(crate) fn prev_is_ident(stream: &Stream, i: usize) -> bool {
    i > 0 && is_ident_char(stream[i - 1].0)
}

/// Extract every `fn` definition (including nested ones) from a stream.
pub(crate) fn extract_fns(stream: &Stream) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < stream.len() {
        if !keyword_at(stream, i, "fn") {
            i += 1;
            continue;
        }
        let kw_at = i;
        let mut j = skip_ws(stream, i + 2);
        let name = read_word(stream, j);
        if name.is_empty() {
            // `fn(..)` pointer type, not a definition.
            i = j.max(kw_at + 2);
            continue;
        }
        j += name.len();
        j = skip_ws(stream, j);
        // Skip generic parameters, guarding `->`/`=>` arrows.
        if stream.get(j).map(|&(c, _)| c) == Some('<') {
            let mut depth = 0i32;
            while let Some(&(c, _)) = stream.get(j) {
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    let prev = stream[j - 1].0;
                    if prev != '-' && prev != '=' {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                }
                j += 1;
            }
            j = skip_ws(stream, j);
        }
        if stream.get(j).map(|&(c, _)| c) != Some('(') {
            i = j;
            continue;
        }
        let params_open = j;
        let params_end = match_paren(stream, params_open);
        let has_self = {
            let first: String = stream[params_open + 1..params_end.saturating_sub(1)]
                .iter()
                .map(|&(c, _)| c)
                .take_while(|&c| c != ',')
                .collect();
            let mut t = first.trim();
            loop {
                let before = t;
                t = t.trim_start_matches('&').trim_start();
                if let Some(rest) = t.strip_prefix('\'') {
                    // lifetime: skip its identifier
                    t = rest.trim_start_matches(is_ident_char).trim_start();
                }
                if let Some(rest) = t.strip_prefix("mut ") {
                    t = rest.trim_start();
                }
                if t == before {
                    break;
                }
            }
            t == "self" || t.starts_with("self:") || t.starts_with("self ")
        };
        // Find the body `{` (or `;` for a trait/extern declaration).
        let mut k = params_end;
        let mut body_open = None;
        while let Some(&(c, _)) = stream.get(k) {
            if c == '{' {
                body_open = Some(k);
                break;
            }
            if c == ';' {
                break;
            }
            k += 1;
        }
        if let Some(open) = body_open {
            fns.push(FnDef {
                name,
                line: stream[kw_at].1,
                has_self,
                params_open,
                params_end,
                body_open: open,
                body_end: block_end(stream, open),
            });
        }
        // Continue from the params so nested `fn`s are also extracted.
        i = params_end;
    }
    fns
}

/// One `lhs <- rhs` taint-propagation site inside a function body.
pub(crate) struct Assign {
    pub(crate) lhs: Vec<String>,
    pub(crate) rhs: (usize, usize),
}

/// Identifiers in `stream[s..e]` (skipping keywords, `_` and numbers).
pub(crate) fn idents_in(stream: &Stream, s: usize, e: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        if is_ident_char(c) && !prev_is_ident(stream, i) {
            let w = read_word(stream, i);
            let len = w.len();
            if !w.is_empty()
                && !is_keyword(&w)
                && w != "_"
                && !w.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push(w);
            }
            i += len;
        } else {
            i += 1;
        }
    }
    out
}

/// End index of the expression starting at `s`: the first `;` (or the
/// keyword `else`, for `let … else`) at nesting depth 0, capped at `e`.
fn expr_end(stream: &Stream, s: usize, e: usize) -> usize {
    let mut nest = 0i32;
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        match c {
            '(' | '[' | '{' => nest += 1,
            ')' | ']' | '}' => nest -= 1,
            ';' if nest == 0 => return i,
            _ => {}
        }
        if nest == 0 && keyword_at(stream, i, "else") {
            return i;
        }
        i += 1;
    }
    e
}

/// Collect taint-propagation sites (`let`, `for` patterns, and plain or
/// compound assignments) in `stream[s..e]`.
pub(crate) fn collect_assignments(stream: &Stream, s: usize, e: usize) -> Vec<Assign> {
    let mut out = Vec::new();
    let mut i = s;
    while i < e {
        if keyword_at(stream, i, "let") {
            let pat_start = i + 3;
            // Pattern ends at the first `=` (not `==`) or `:` (not `::`)
            // at nesting depth 0; a `;` means no initializer.
            let mut nest = 0i32;
            let mut j = pat_start;
            let mut pat_end = None;
            let mut init = None;
            while j < e {
                let c = stream[j].0;
                match c {
                    '(' | '[' | '<' => nest += 1,
                    ')' | ']' => nest -= 1,
                    '>' if nest > 0 && stream[j - 1].0 != '-' && stream[j - 1].0 != '=' => {
                        nest -= 1;
                    }
                    ':' if nest == 0 => {
                        if stream.get(j + 1).map(|&(c, _)| c) == Some(':') {
                            j += 2;
                            continue;
                        }
                        if pat_end.is_none() {
                            pat_end = Some(j);
                        }
                    }
                    '=' if nest == 0 => {
                        let next = stream.get(j + 1).map(|&(c, _)| c);
                        if next != Some('=') {
                            if pat_end.is_none() {
                                pat_end = Some(j);
                            }
                            init = Some(j + 1);
                            break;
                        }
                        j += 2;
                        continue;
                    }
                    ';' if nest == 0 => break,
                    '{' if nest == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let (Some(pe), Some(rhs_start)) = (pat_end, init) {
                let rhs_end = expr_end(stream, rhs_start, e);
                out.push(Assign {
                    lhs: idents_in(stream, pat_start, pe),
                    rhs: (rhs_start, rhs_end),
                });
                i = rhs_end;
                continue;
            }
            i = j.max(i + 3);
            continue;
        }
        if keyword_at(stream, i, "for") {
            // `for <pat> in <header> {`
            let pat_start = i + 3;
            let mut j = pat_start;
            let mut nest = 0i32;
            let mut in_at = None;
            while j < e {
                let c = stream[j].0;
                match c {
                    '(' | '[' => nest += 1,
                    ')' | ']' => nest -= 1,
                    '{' if nest == 0 => break,
                    _ => {}
                }
                if nest == 0 && keyword_at(stream, j, "in") {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_at) = in_at {
                let mut k = in_at + 2;
                let mut nest = 0i32;
                while k < e {
                    let c = stream[k].0;
                    match c {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        '{' if nest == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                out.push(Assign {
                    lhs: idents_in(stream, pat_start, in_at),
                    rhs: (in_at + 2, k),
                });
                i = in_at + 2;
                continue;
            }
            i += 3;
            continue;
        }
        // Plain / compound assignment: `ident =`, `ident +=`, …
        let c = stream[i].0;
        if is_ident_char(c) && !prev_is_ident(stream, i) && (i == 0 || stream[i - 1].0 != '.') {
            let w = read_word(stream, i);
            if !w.is_empty() && !is_keyword(&w) {
                let mut j = skip_ws(stream, i + w.len());
                let op0 = stream.get(j).map(|&(c, _)| c);
                let mut is_assign = false;
                match op0 {
                    Some('=') => {
                        let next = stream.get(j + 1).map(|&(c, _)| c);
                        if next != Some('=') && next != Some('>') {
                            is_assign = true;
                            j += 1;
                        }
                    }
                    Some('+') | Some('-') | Some('*') | Some('/') | Some('%') | Some('&')
                    | Some('|') | Some('^')
                        if stream.get(j + 1).map(|&(c, _)| c) == Some('=')
                            && stream.get(j + 2).map(|&(c, _)| c) != Some('=') =>
                    {
                        is_assign = true;
                        j += 2;
                    }
                    _ => {}
                }
                if is_assign {
                    let rhs_end = expr_end(stream, j, e);
                    out.push(Assign {
                        lhs: vec![w.clone()],
                        rhs: (j, rhs_end),
                    });
                    i = rhs_end;
                    continue;
                }
            }
            i += w.len().max(1);
            continue;
        }
        i += 1;
    }
    out
}

/// Is the expression `stream[s..e]` rank-local under the heuristic?
///
/// Tainted: the token `rank`, the `.rank` accessor/field, and any
/// identifier in `tainted`. *Untainted by fiat*: expressions containing
/// a block/struct literal, and call results (a call expression is
/// skipped entirely — collectives return replicated values, and general
/// calls default to replicated to keep false positives near zero; the
/// blind spot is documented in DESIGN.md §11).
pub(crate) fn expr_tainted(
    stream: &Stream,
    s: usize,
    e: usize,
    tainted: &BTreeSet<String>,
) -> bool {
    if stream[s..e.min(stream.len())]
        .iter()
        .any(|&(c, _)| c == '{')
    {
        return false;
    }
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        if c == '.' {
            if stream.get(i + 1).map(|&(c, _)| c) == Some('.') {
                // Range syntax `..`: what follows is an operand, not a
                // field name — leave it to the identifier scan.
                i += 2;
                continue;
            }
            let w = read_word(stream, i + 1);
            if w == "rank" {
                return true;
            }
            let after = i + 1 + w.len();
            if stream.get(after).map(|&(c, _)| c) == Some('(') {
                // Method call: result treated as replicated.
                i = match_paren(stream, after);
            } else {
                i += 1 + w.len();
            }
            continue;
        }
        if is_ident_char(c) && !prev_is_ident(stream, i) {
            let w = read_word(stream, i);
            let after = i + w.len();
            if matches_at(stream, after, "::") {
                i = after + 2;
                continue;
            }
            if stream.get(after).map(|&(c, _)| c) == Some('(') {
                // Free-call result: replicated by fiat.
                i = match_paren(stream, after);
                continue;
            }
            if w == "rank" || tainted.contains(&w) {
                return true;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    false
}

/// Fixed-point taint set for one function body: seeds from `rank`
/// spellings inside right-hand sides, propagates through assignments.
pub(crate) fn taint_set(stream: &Stream, s: usize, e: usize) -> BTreeSet<String> {
    let assigns = collect_assignments(stream, s, e);
    let mut tainted = BTreeSet::new();
    for _ in 0..16 {
        let mut changed = false;
        for a in &assigns {
            if expr_tainted(stream, a.rhs.0, a.rhs.1, &tainted) {
                for l in &a.lhs {
                    changed |= tainted.insert(l.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Pull the `CollectiveKind::Xxx` argument out of an
/// `enter_collective(..)` call (runtime internals only); `None` when the
/// kind is a variable.
fn parse_collective_kind(stream: &Stream, open: usize, end: usize) -> Option<String> {
    let mut i = open;
    while i + 1 < end {
        if matches_at(stream, i, "CollectiveKind")
            && matches_at(stream, i + "CollectiveKind".len(), "::")
        {
            let w = read_word(stream, i + "CollectiveKind".len() + 2);
            if !w.is_empty() {
                return Some(w);
            }
        }
        i += 1;
    }
    None
}

/// End of a `return`/`break` value expression: first `;`/`,` at nesting
/// depth 0 or an unbalanced closer (match-arm boundary), capped at `e`.
fn ret_expr_end(stream: &Stream, s: usize, e: usize) -> usize {
    let mut nest = 0i32;
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        match c {
            '(' | '[' | '{' => nest += 1,
            ')' | ']' | '}' => {
                if nest == 0 {
                    return i;
                }
                nest -= 1;
            }
            ';' | ',' if nest == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    e
}

/// Scan from `s` to the body `{` at nesting depth 0 (for `if`/`while`/
/// `for`-header/`match`-scrutinee positions). `None` if a `;` intervenes.
pub(crate) fn find_body_open(stream: &Stream, s: usize, e: usize) -> Option<usize> {
    let mut nest = 0i32;
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        match c {
            '(' | '[' => nest += 1,
            ')' | ']' => nest -= 1,
            '{' if nest == 0 => return Some(i),
            ';' if nest == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse an `if`/`else if`/`else` chain starting at the `if` keyword.
/// Returns the branch node and the index one past the chain.
fn parse_if(
    stream: &Stream,
    start: usize,
    e: usize,
    tainted: &BTreeSet<String>,
) -> (Option<PNode>, usize) {
    let line = stream[start].1;
    let mut arms: Vec<Vec<PNode>> = Vec::new();
    let mut any_tainted = false;
    let mut cur = start;
    loop {
        let cond_start = cur + 2;
        let Some(body_open) = find_body_open(stream, cond_start, e) else {
            return (None, cond_start);
        };
        any_tainted |= expr_tainted(stream, cond_start, body_open, tainted);
        let close = block_end(stream, body_open);
        arms.push(walk_range(stream, body_open + 1, close - 1, tainted));
        let k = skip_ws(stream, close);
        if keyword_at(stream, k, "else") {
            let b = skip_ws(stream, k + 4);
            if keyword_at(stream, b, "if") {
                cur = b;
                continue;
            }
            if stream.get(b).map(|&(c, _)| c) == Some('{') {
                let c2 = block_end(stream, b);
                arms.push(walk_range(stream, b + 1, c2 - 1, tainted));
                return (
                    Some(PNode::Branch {
                        arms,
                        tainted: any_tainted,
                        line,
                    }),
                    c2,
                );
            }
        }
        // No else: implicit empty arm.
        arms.push(Vec::new());
        return (
            Some(PNode::Branch {
                arms,
                tainted: any_tainted,
                line,
            }),
            close,
        );
    }
}

/// Parse a `match` expression starting at the `match` keyword.
fn parse_match(
    stream: &Stream,
    start: usize,
    e: usize,
    tainted: &BTreeSet<String>,
) -> (Option<PNode>, usize) {
    let line = stream[start].1;
    let scrut_start = start + 5;
    let Some(body_open) = find_body_open(stream, scrut_start, e) else {
        return (None, scrut_start);
    };
    let cond_tainted = expr_tainted(stream, scrut_start, body_open, tainted);
    let close = block_end(stream, body_open);
    let inner_end = close - 1;
    let mut arms: Vec<Vec<PNode>> = Vec::new();
    let mut j = body_open + 1;
    while j < inner_end {
        // Find the arm's `=>` at nesting depth 0.
        let mut nest = 0i32;
        let mut arrow = None;
        while j < inner_end {
            let c = stream[j].0;
            match c {
                '(' | '[' | '{' => nest += 1,
                ')' | ']' | '}' => nest -= 1,
                '=' if nest == 0
                    && stream.get(j + 1).map(|&(c, _)| c) == Some('>')
                    && (j == 0 || stream[j - 1].0 != '=') =>
                {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let b = skip_ws(stream, arrow + 2);
        if stream.get(b).map(|&(c, _)| c) == Some('{') {
            let end = block_end(stream, b);
            arms.push(walk_range(stream, b + 1, end - 1, tainted));
            j = skip_ws(stream, end);
            if stream.get(j).map(|&(c, _)| c) == Some(',') {
                j += 1;
            }
        } else {
            // Expression arm: up to the `,` at nesting depth 0.
            let mut nest = 0i32;
            let mut k = b;
            while k < inner_end {
                let c = stream[k].0;
                match c {
                    '(' | '[' | '{' => nest += 1,
                    ')' | ']' | '}' => nest -= 1,
                    ',' if nest == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arms.push(walk_range(stream, b, k, tainted));
            j = k + 1;
        }
    }
    if arms.is_empty() {
        return (None, close);
    }
    (
        Some(PNode::Branch {
            arms,
            tainted: cond_tainted,
            line,
        }),
        close,
    )
}

/// Walk `stream[s..e)` (one function-body region) into summary nodes.
fn walk_range(stream: &Stream, s: usize, e: usize, tainted: &BTreeSet<String>) -> Vec<PNode> {
    let mut out = Vec::new();
    let mut i = s;
    while i < e.min(stream.len()) {
        let (c, line) = stream[i];
        if c == '.' {
            let w = read_word(stream, i + 1);
            let after = i + 1 + w.len();
            if !w.is_empty() && stream.get(after).map(|&(c, _)| c) == Some('(') {
                let args_end = match_paren(stream, after);
                if w == "enter_collective" {
                    if let Some(kind) = parse_collective_kind(stream, after, args_end) {
                        out.push(PNode::Op(kind, line));
                    }
                    i = args_end;
                    continue;
                }
                if let Some((_, effects)) = BUILTIN_EFFECTS.iter().find(|(n, _)| *n == w) {
                    // Arguments evaluate before the collective runs.
                    out.extend(walk_range(stream, after + 1, args_end - 1, tainted));
                    for k in *effects {
                        out.push(PNode::Op((*k).to_string(), line));
                    }
                    i = args_end;
                    continue;
                }
                out.extend(walk_range(stream, after + 1, args_end - 1, tainted));
                out.push(PNode::Call {
                    name: w,
                    method: true,
                    line,
                });
                i = args_end;
                continue;
            }
            i += 1;
            continue;
        }
        if is_ident_char(c) && !prev_is_ident(stream, i) {
            if keyword_at(stream, i, "if") {
                let (node, next) = parse_if(stream, i, e, tainted);
                out.extend(node);
                i = next.max(i + 2);
                continue;
            }
            if keyword_at(stream, i, "match") {
                let (node, next) = parse_match(stream, i, e, tainted);
                out.extend(node);
                i = next.max(i + 5);
                continue;
            }
            if keyword_at(stream, i, "while") {
                // Covers `while let` too: the header is scanned whole.
                let cond_start = i + 5;
                if let Some(body_open) = find_body_open(stream, cond_start, e) {
                    let close = block_end(stream, body_open);
                    out.push(PNode::Loop {
                        body: walk_range(stream, body_open + 1, close - 1, tainted),
                        tainted: expr_tainted(stream, cond_start, body_open, tainted),
                        line,
                    });
                    i = close;
                    continue;
                }
                i += 5;
                continue;
            }
            if keyword_at(stream, i, "loop") {
                let b = skip_ws(stream, i + 4);
                if stream.get(b).map(|&(c, _)| c) == Some('{') {
                    let close = block_end(stream, b);
                    out.push(PNode::Loop {
                        body: walk_range(stream, b + 1, close - 1, tainted),
                        tainted: false,
                        line,
                    });
                    i = close;
                    continue;
                }
                i += 4;
                continue;
            }
            if keyword_at(stream, i, "for") {
                // `for <pat> in <header> { .. }`
                let mut j = i + 3;
                let mut nest = 0i32;
                let mut in_at = None;
                while j < e {
                    let c2 = stream[j].0;
                    match c2 {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        '{' if nest == 0 => break,
                        _ => {}
                    }
                    if nest == 0 && keyword_at(stream, j, "in") {
                        in_at = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(in_at) = in_at {
                    if let Some(body_open) = find_body_open(stream, in_at + 2, e) {
                        let close = block_end(stream, body_open);
                        out.push(PNode::Loop {
                            body: walk_range(stream, body_open + 1, close - 1, tainted),
                            tainted: expr_tainted(stream, in_at + 2, body_open, tainted),
                            line,
                        });
                        i = close;
                        continue;
                    }
                }
                i += 3;
                continue;
            }
            if keyword_at(stream, i, "return") {
                let end = ret_expr_end(stream, i + 6, e);
                out.extend(walk_range(stream, i + 6, end, tainted));
                out.push(PNode::Return);
                i = end;
                continue;
            }
            if keyword_at(stream, i, "break") {
                out.push(PNode::Break);
                i += 5;
                continue;
            }
            if keyword_at(stream, i, "continue") {
                out.push(PNode::Continue);
                i += 8;
                continue;
            }
            if keyword_at(stream, i, "fn") {
                // Nested item: analyzed as its own function; skip here.
                let mut j = i + 2;
                let mut nest = 0i32;
                let mut skipped = false;
                while j < e {
                    let c2 = stream[j].0;
                    match c2 {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        '{' if nest == 0 => {
                            i = block_end(stream, j);
                            skipped = true;
                            break;
                        }
                        ';' if nest == 0 => {
                            i = j + 1;
                            skipped = true;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !skipped {
                    i = e;
                }
                continue;
            }
            if keyword_at(stream, i, "else") {
                // `let … else { diverging }`: a conditional divergence.
                let b = skip_ws(stream, i + 4);
                if stream.get(b).map(|&(c, _)| c) == Some('{') {
                    let close = block_end(stream, b);
                    out.push(PNode::Branch {
                        arms: vec![walk_range(stream, b + 1, close - 1, tainted), Vec::new()],
                        tainted: false,
                        line,
                    });
                    i = close;
                    continue;
                }
                i += 4;
                continue;
            }
            let w = read_word(stream, i);
            let after = i + w.len();
            if stream.get(after).map(|&(c, _)| c) == Some('!') && !w.is_empty() {
                // Macro invocation: walk the delimited interior.
                let d = skip_ws(stream, after + 1);
                if matches!(stream.get(d).map(|&(c, _)| c), Some('(' | '[' | '{')) {
                    let end = match_paren(stream, d);
                    out.extend(walk_range(stream, d + 1, end - 1, tainted));
                    i = end;
                    continue;
                }
                i = after + 1;
                continue;
            }
            if !w.is_empty() && !is_keyword(&w) && stream.get(after).map(|&(c, _)| c) == Some('(') {
                let args_end = match_paren(stream, after);
                out.extend(walk_range(stream, after + 1, args_end - 1, tainted));
                out.push(PNode::Call {
                    name: w,
                    method: false,
                    line,
                });
                i = args_end;
                continue;
            }
            i = after.max(i + 1);
            continue;
        }
        if c == '{' {
            // Bare block or struct literal: transparent.
            let end = block_end(stream, i);
            out.extend(walk_range(stream, i + 1, end - 1, tainted));
            i = end;
            continue;
        }
        if c == '?' {
            out.push(PNode::Branch {
                arms: vec![vec![PNode::Return], Vec::new()],
                tainted: false,
                line,
            });
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Interprocedural analysis: call resolution, canonicalization, checks.
// ---------------------------------------------------------------------------

/// One analyzed file: its functions and their summary trees.
#[derive(Debug)]
struct FileInfo {
    path: String,
    fns: Vec<FnDef>,
    nodes: Vec<Vec<PNode>>,
}

/// Build per-function summaries for one stripped stream.
fn analyze_stream(path: &str, stream: &Stream) -> FileInfo {
    let fns = extract_fns(stream);
    let nodes = fns
        .iter()
        .map(|f| {
            let inner = (f.body_open + 1, f.body_end.saturating_sub(1));
            let taint = taint_set(stream, inner.0, inner.1);
            walk_range(stream, inner.0, inner.1, &taint)
        })
        .collect();
    FileInfo {
        path: path.to_string(),
        fns,
        nodes,
    }
}

enum Memo {
    InProgress,
    Done(Vec<SpecNode>),
}

/// A violation reported by the phase-graph checks (adapted into a lint
/// [`crate::lint::Finding`] by the caller).
pub(crate) struct ProtocolFinding {
    /// 1-based line of the offending construct.
    pub(crate) line: usize,
    /// [`Rule::R4`] or [`Rule::R5`].
    pub(crate) rule: Rule,
    /// Human-readable explanation.
    pub(crate) message: String,
}

struct Analyzer {
    files: Vec<FileInfo>,
    by_name: BTreeMap<String, Vec<(usize, usize)>>,
    /// Workspace (spec) mode: resolve calls across files and treat
    /// ambiguity as a hard error. Lint mode resolves same-file only.
    spec_mode: bool,
    memo: BTreeMap<(usize, usize), Memo>,
}

fn spec_has_effect(nodes: &[SpecNode]) -> bool {
    nodes.iter().any(|n| match n {
        SpecNode::Op(_) | SpecNode::Call { .. } | SpecNode::Return => true,
        SpecNode::Branch(arms) => arms.iter().any(|a| spec_has_effect(a)),
        SpecNode::Loop(b) => spec_has_effect(b),
        SpecNode::Break | SpecNode::Continue => false,
    })
}

fn spec_has_op(nodes: &[SpecNode]) -> bool {
    nodes.iter().any(|n| match n {
        SpecNode::Op(_) => true,
        SpecNode::Call { body, .. } => spec_has_op(body),
        SpecNode::Branch(arms) => arms.iter().any(|a| spec_has_op(a)),
        SpecNode::Loop(b) => spec_has_op(b),
        _ => false,
    })
}

/// Serialize the *collective* content of a summary (markers stripped,
/// call bodies flattened) so two arms compare equal iff they enter the
/// same collective sequence.
fn ops_sig(nodes: &[SpecNode], out: &mut String) {
    for n in nodes {
        match n {
            SpecNode::Op(k) => {
                out.push_str(k);
                out.push(';');
            }
            SpecNode::Call { body, .. } => ops_sig(body, out),
            SpecNode::Branch(arms) => {
                out.push_str("B(");
                for a in arms {
                    ops_sig(a, out);
                    out.push('|');
                }
                out.push(')');
            }
            SpecNode::Loop(b) => {
                out.push_str("L(");
                ops_sig(b, out);
                out.push(')');
            }
            _ => {}
        }
    }
}

/// `return` reachable in this summary (not descending into calls: a
/// callee's return exits the callee, not this function).
fn spec_has_return(nodes: &[SpecNode]) -> bool {
    nodes.iter().any(|n| match n {
        SpecNode::Return => true,
        SpecNode::Branch(arms) => arms.iter().any(|a| spec_has_return(a)),
        SpecNode::Loop(b) => spec_has_return(b),
        _ => false,
    })
}

/// `break`/`continue` targeting an *enclosing* loop (not descending into
/// nested loops, which capture their own exits).
fn spec_has_loop_exit(nodes: &[SpecNode]) -> bool {
    nodes.iter().any(|n| match n {
        SpecNode::Break | SpecNode::Continue => true,
        SpecNode::Branch(arms) => arms.iter().any(|a| spec_has_loop_exit(a)),
        _ => false,
    })
}

impl Analyzer {
    fn new(files: Vec<FileInfo>, spec_mode: bool) -> Self {
        let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                by_name.entry(g.name.clone()).or_default().push((fi, gi));
            }
        }
        Analyzer {
            files,
            by_name,
            spec_mode,
            memo: BTreeMap::new(),
        }
    }

    /// Canonicalized protocol effect of one function (memoized;
    /// recursion is cut to the empty effect).
    fn effect_of(&mut self, fi: usize, gi: usize) -> Result<Vec<SpecNode>, String> {
        match self.memo.get(&(fi, gi)) {
            Some(Memo::Done(v)) => return Ok(v.clone()),
            Some(Memo::InProgress) => return Ok(Vec::new()),
            None => {}
        }
        self.memo.insert((fi, gi), Memo::InProgress);
        let nodes = self.files[fi].nodes[gi].clone();
        let mut canon = self.canon(fi, &nodes)?;
        // A callee that enters no collective contributes nothing to the
        // protocol; its internal control-flow markers are private to it.
        if !spec_has_op(&canon) {
            canon = Vec::new();
        }
        self.memo.insert((fi, gi), Memo::Done(canon.clone()));
        Ok(canon)
    }

    /// Resolve a call site to `(effect, defining file)`. Same-file
    /// definitions win; spec mode falls back to the workspace and
    /// errors out when same-named candidates disagree on effect.
    fn resolve(
        &mut self,
        fi: usize,
        name: &str,
        method: bool,
    ) -> Result<(Vec<SpecNode>, String), String> {
        let pick = |cands: Vec<(usize, usize)>, files: &[FileInfo]| -> Vec<(usize, usize)> {
            let (with_self, without): (Vec<_>, Vec<_>) = cands
                .into_iter()
                .partition(|&(f, g)| files[f].fns[g].has_self);
            let (preferred, fallback) = if method {
                (with_self, without)
            } else {
                (without, with_self)
            };
            if preferred.is_empty() {
                fallback
            } else {
                preferred
            }
        };
        let same: Vec<(usize, usize)> = (0..self.files[fi].fns.len())
            .filter(|&g| self.files[fi].fns[g].name == name)
            .map(|g| (fi, g))
            .collect();
        let cands = if same.is_empty() {
            if self.spec_mode {
                pick(
                    self.by_name.get(name).cloned().unwrap_or_default(),
                    &self.files,
                )
            } else {
                Vec::new()
            }
        } else {
            pick(same, &self.files)
        };
        if cands.is_empty() {
            return Ok((Vec::new(), String::new()));
        }
        let mut effects = Vec::new();
        for &(f, g) in &cands {
            effects.push((self.effect_of(f, g)?, f, g));
        }
        if effects.iter().all(|(e, _, _)| *e == effects[0].0) {
            let f = effects[0].1;
            return Ok((effects.swap_remove(0).0, self.files[f].path.clone()));
        }
        if self.spec_mode {
            let locs: Vec<String> = effects
                .iter()
                .map(|&(_, f, g)| format!("{}:{}", self.files[f].path, self.files[f].fns[g].line))
                .collect();
            return Err(format!(
                "ambiguous call `{name}`: same-named candidates with different protocol \
                 effects at {}",
                locs.join(", ")
            ));
        }
        Ok((Vec::new(), String::new()))
    }

    /// Canonicalize a summary: expand calls (named wrapper for solver-
    /// crate callees, spliced otherwise), splice equal-armed branches,
    /// drop effect-free loops and calls.
    fn canon(&mut self, fi: usize, nodes: &[PNode]) -> Result<Vec<SpecNode>, String> {
        let mut out = Vec::new();
        for node in nodes {
            match node {
                PNode::Op(k, _) => out.push(SpecNode::Op(k.clone())),
                PNode::Call { name, method, .. } => {
                    let (effect, def_path) = self.resolve(fi, name, *method)?;
                    if effect.is_empty() {
                        continue;
                    }
                    // Solver-crate callees keep a named wrapper for spec
                    // readability; so does any effect carrying a `Return`
                    // marker, which must stay scoped to the callee (a
                    // spliced `!return` would read as exiting the caller).
                    if def_path.starts_with("crates/core/") || spec_has_return(&effect) {
                        out.push(SpecNode::Call {
                            name: name.clone(),
                            body: effect,
                        });
                    } else {
                        out.extend(effect);
                    }
                }
                PNode::Branch { arms, .. } => {
                    let mut carms = Vec::new();
                    for a in arms {
                        carms.push(self.canon(fi, a)?);
                    }
                    if carms.iter().all(|a| *a == carms[0]) {
                        out.extend(carms.swap_remove(0));
                    } else {
                        out.push(SpecNode::Branch(carms));
                    }
                }
                PNode::Loop { body, .. } => {
                    let cb = self.canon(fi, body)?;
                    if spec_has_effect(&cb) {
                        out.push(SpecNode::Loop(cb));
                    }
                }
                PNode::Break => out.push(SpecNode::Break),
                PNode::Continue => out.push(SpecNode::Continue),
                PNode::Return => out.push(SpecNode::Return),
            }
        }
        Ok(out)
    }

    /// Does this summary (calls resolved) enter any collective?
    fn pnodes_have_op(&mut self, fi: usize, nodes: &[PNode]) -> bool {
        nodes.iter().any(|n| match n {
            PNode::Op(..) => true,
            PNode::Call { name, method, .. } => {
                let effect = self
                    .resolve(fi, name, *method)
                    .map(|(e, _)| e)
                    .unwrap_or_default();
                spec_has_op(&effect)
            }
            PNode::Branch { arms, .. } => arms.iter().any(|a| self.pnodes_have_op(fi, a)),
            PNode::Loop { body, .. } => self.pnodes_have_op(fi, body),
            _ => false,
        })
    }

    /// R4/R5 over one function summary. `follow` = collectives happen
    /// after this node list in the enclosing context; `loops` = one
    /// entry per enclosing loop (true when its body has collectives).
    fn check_nodes(
        &mut self,
        fi: usize,
        nodes: &[PNode],
        follow: bool,
        loops: &mut Vec<bool>,
        out: &mut Vec<ProtocolFinding>,
    ) {
        let n = nodes.len();
        let mut suffix = vec![follow; n];
        let mut acc = follow;
        for i in (0..n).rev() {
            suffix[i] = acc;
            acc = acc || self.pnodes_have_op(fi, std::slice::from_ref(&nodes[i]));
        }
        for (i, node) in nodes.iter().enumerate() {
            match node {
                PNode::Branch {
                    arms,
                    tainted,
                    line,
                } => {
                    for a in arms {
                        self.check_nodes(fi, a, suffix[i], loops, out);
                    }
                    if !*tainted {
                        continue;
                    }
                    let mut carms = Vec::new();
                    for a in arms {
                        carms.push(self.canon(fi, a).unwrap_or_default());
                    }
                    let sigs: Vec<String> = carms
                        .iter()
                        .map(|a| {
                            let mut s = String::new();
                            ops_sig(a, &mut s);
                            s
                        })
                        .collect();
                    if sigs.iter().any(|s| *s != sigs[0]) {
                        out.push(ProtocolFinding {
                            line: *line,
                            rule: Rule::R4,
                            message: "arms of this rank-divergent conditional have \
                                      different collective sequences: ranks taking \
                                      different arms diverge on the protocol and \
                                      deadlock or corrupt state"
                                .to_string(),
                        });
                        continue;
                    }
                    let rets: Vec<bool> = carms.iter().map(|a| spec_has_return(a)).collect();
                    if rets.iter().any(|&r| r != rets[0]) && (suffix[i] || loops.iter().any(|&b| b))
                    {
                        out.push(ProtocolFinding {
                            line: *line,
                            rule: Rule::R4,
                            message: "rank-divergent early `return`: ranks leaving here \
                                      skip the collectives that follow, while the rest \
                                      block on them forever"
                                .to_string(),
                        });
                        continue;
                    }
                    let exits: Vec<bool> = carms.iter().map(|a| spec_has_loop_exit(a)).collect();
                    if exits.iter().any(|&x| x != exits[0]) && loops.last() == Some(&true) {
                        out.push(ProtocolFinding {
                            line: *line,
                            rule: Rule::R4,
                            message: "rank-divergent `break`/`continue` in a loop that \
                                      enters collectives: ranks exiting early run fewer \
                                      iterations of the collective sequence"
                                .to_string(),
                        });
                    }
                }
                PNode::Loop {
                    body,
                    tainted,
                    line,
                } => {
                    let body_op = self.pnodes_have_op(fi, body);
                    if *tainted && body_op {
                        out.push(ProtocolFinding {
                            line: *line,
                            rule: Rule::R5,
                            message: "collective inside a loop whose trip count derives \
                                      from rank-local data: ranks run different numbers \
                                      of iterations and the collective sequences diverge \
                                      (derive the bound from a replicated/allreduced \
                                      value instead)"
                                .to_string(),
                        });
                    }
                    loops.push(body_op);
                    self.check_nodes(fi, body, suffix[i] || body_op, loops, out);
                    loops.pop();
                }
                _ => {}
            }
        }
    }
}

/// Run the R4/R5 phase-graph checks over one file's stripped stream
/// (same-file call resolution only; the workspace spec extraction is the
/// interprocedural mode).
pub(crate) fn check_stream(stream: &Stream) -> Vec<ProtocolFinding> {
    let file = analyze_stream("", stream);
    let mut an = Analyzer::new(vec![file], false);
    let mut out = Vec::new();
    for gi in 0..an.files[0].fns.len() {
        let nodes = an.files[0].nodes[gi].clone();
        an.check_nodes(0, &nodes, false, &mut Vec::new(), &mut out);
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Extract the workspace protocol spec: analyze every solver/runtime
/// source file, compose summaries interprocedurally from the entry
/// point, and append the runtime's implicit `Shutdown`.
///
/// # Errors
/// I/O failures, a missing entry point, or an ambiguous call (same-named
/// functions with different protocol effects) abort the extraction.
pub fn extract_protocol_spec(root: &Path) -> Result<ProtocolSpec, String> {
    let mut files = Vec::new();
    for dir in SPEC_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk(&abs, &mut paths).map_err(|e| format!("walking {dir}: {e}"))?;
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&p).map_err(|e| format!("reading {rel}: {e}"))?;
            let lines = scan_lines(&src);
            let mask = test_region_mask(&lines);
            let stream = code_stream_masked(&lines, &mask);
            files.push(analyze_stream(&rel, &stream));
        }
    }
    let mut an = Analyzer::new(files, true);
    let fi = an
        .files
        .iter()
        .position(|f| f.path == PROTOCOL_ENTRY_FILE)
        .ok_or_else(|| format!("entry file `{PROTOCOL_ENTRY_FILE}` not found"))?;
    let gi = an.files[fi]
        .fns
        .iter()
        .position(|g| g.name == PROTOCOL_ENTRY_FN)
        .ok_or_else(|| {
            format!("entry `{PROTOCOL_ENTRY_FN}` not found in `{PROTOCOL_ENTRY_FILE}`")
        })?;
    let nodes = an.files[fi].nodes[gi].clone();
    let mut protocol = an.canon(fi, &nodes)?;
    protocol.push(SpecNode::Op("Shutdown".to_string()));
    Ok(ProtocolSpec {
        entry: format!("{PROTOCOL_ENTRY_FILE}::{PROTOCOL_ENTRY_FN}"),
        protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{code_stream_masked, scan_lines, test_region_mask};

    fn stream_of(src: &str) -> Vec<(char, usize)> {
        let lines = scan_lines(src);
        let mask = test_region_mask(&lines);
        code_stream_masked(&lines, &mask)
    }

    fn nodes_of(src: &str) -> Vec<Vec<PNode>> {
        analyze_stream("test.rs", &stream_of(src)).nodes
    }

    fn flat_ops(nodes: &[PNode]) -> Vec<String> {
        let mut out = Vec::new();
        fn go(nodes: &[PNode], out: &mut Vec<String>) {
            for n in nodes {
                match n {
                    PNode::Op(k, _) => out.push(k.clone()),
                    PNode::Branch { arms, .. } => arms.iter().for_each(|a| go(a, out)),
                    PNode::Loop { body, .. } => go(body, out),
                    PNode::Call { .. } => out.push("<call>".to_string()),
                    _ => {}
                }
            }
        }
        go(nodes, &mut out);
        out
    }

    #[test]
    fn extract_fns_finds_methods_and_free_fns() {
        let src = "impl Foo {\n    fn with_self(&mut self, x: u32) -> u32 { x }\n}\n\
                   fn free(y: u32) -> u32 { y }\n";
        let fns = extract_fns(&stream_of(src));
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "with_self");
        assert!(fns[0].has_self);
        assert_eq!(fns[1].name, "free");
        assert!(!fns[1].has_self);
    }

    #[test]
    fn builtin_collectives_expand_to_their_effects() {
        let src = "fn f(ctx: &C) { ctx.barrier(); let s = ctx.allreduce_sum(1.0); }\n";
        let nodes = nodes_of(src);
        assert_eq!(flat_ops(&nodes[0]), vec!["Barrier", "ReduceF64", "SimSync"]);
    }

    #[test]
    fn exchange_finish_records_exchange_then_simsync() {
        let src = "fn f(ctx: &C) { let mut ex = ctx.exchange(); ex.finish(&mut |_, _| {}); }\n";
        let nodes = nodes_of(src);
        assert_eq!(flat_ops(&nodes[0]), vec!["Exchange", "SimSync"]);
    }

    #[test]
    fn if_else_chains_become_one_branch_with_all_arms() {
        let src = "fn f(x: u32, ctx: &C) {\n\
                   if x == 0 { ctx.barrier(); } else if x == 1 { ctx.sim_sync(); } else { }\n\
                   }\n";
        let nodes = nodes_of(src);
        assert_eq!(nodes[0].len(), 1);
        let PNode::Branch { arms, tainted, .. } = &nodes[0][0] else {
            panic!("expected branch, got {:?}", nodes[0]);
        };
        assert_eq!(arms.len(), 3);
        assert!(!tainted);
        assert_eq!(flat_ops(&arms[0]), vec!["Barrier"]);
        assert_eq!(flat_ops(&arms[1]), vec!["SimSync"]);
        assert!(arms[2].is_empty());
    }

    #[test]
    fn match_arms_split_without_fat_arrow_confusion() {
        let src = "fn f(x: Option<u32>, ctx: &C) {\n\
                   match x {\n\
                   Some(n) if n >= 2 => { ctx.barrier(); }\n\
                   Some(_) => ctx.sim_sync(),\n\
                   None => {}\n\
                   }\n\
                   }\n";
        let nodes = nodes_of(src);
        let PNode::Branch { arms, .. } = &nodes[0][0] else {
            panic!("expected branch, got {:?}", nodes[0]);
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(flat_ops(&arms[0]), vec!["Barrier"]);
        assert_eq!(flat_ops(&arms[1]), vec!["SimSync"]);
        assert!(arms[2].is_empty());
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let src = "fn outer(ctx: &C) {\n\
                   fn inner(ctx: &C) { ctx.barrier(); }\n\
                   inner(ctx);\n\
                   }\n";
        let fi = analyze_stream("test.rs", &stream_of(src));
        assert_eq!(fi.fns.len(), 2);
        let outer = fi.fns.iter().position(|f| f.name == "outer").unwrap();
        // The outer fn sees only the call; the barrier belongs to inner.
        assert_eq!(flat_ops(&fi.nodes[outer]), vec!["<call>"]);
    }

    #[test]
    fn rank_taint_flows_through_assignments() {
        let src = "fn f(ctx: &C) {\n\
                   let r = ctx.rank();\n\
                   let two_hops = r + 1;\n\
                   if two_hops > 0 { ctx.barrier(); }\n\
                   }\n";
        let nodes = nodes_of(src);
        let PNode::Branch { tainted, .. } = nodes[0].last().unwrap() else {
            panic!("expected branch, got {:?}", nodes[0]);
        };
        assert!(tainted, "taint should flow r -> two_hops -> condition");
    }

    #[test]
    fn call_results_are_replicated_by_fiat() {
        let src = "fn f(ctx: &C) {\n\
                   let rounds = ctx.allreduce_max_u64(3);\n\
                   if rounds > 0 { ctx.barrier(); }\n\
                   }\n";
        let nodes = nodes_of(src);
        let PNode::Branch { tainted, .. } = nodes[0].last().unwrap() else {
            panic!("expected branch, got {:?}", nodes[0]);
        };
        assert!(!tainted, "allreduce result is replicated, not rank-local");
    }

    #[test]
    fn canon_splices_equal_arms_and_drops_effect_free_loops() {
        let src = "fn f(x: u32, ctx: &C) {\n\
                   if x == 0 { ctx.barrier(); } else { ctx.barrier(); }\n\
                   for i in 0..x { let _ = i; }\n\
                   }\n";
        let file = analyze_stream("test.rs", &stream_of(src));
        let mut an = Analyzer::new(vec![file], false);
        let nodes = an.files[0].nodes[0].clone();
        let canon = an.canon(0, &nodes).unwrap();
        assert_eq!(canon, vec![SpecNode::Op("Barrier".to_string())]);
    }

    #[test]
    fn same_file_calls_resolve_interprocedurally() {
        let src = "fn helper(ctx: &C) { ctx.barrier(); }\n\
                   fn f(x: u32, ctx: &C) { if x == 0 { helper(ctx); } }\n";
        let file = analyze_stream("test.rs", &stream_of(src));
        let mut an = Analyzer::new(vec![file], false);
        let gi = an.files[0].fns.iter().position(|g| g.name == "f").unwrap();
        let nodes = an.files[0].nodes[gi].clone();
        let canon = an.canon(0, &nodes).unwrap();
        // helper's barrier shows up inside f's branch (spliced: non-core path).
        assert_eq!(
            canon,
            vec![SpecNode::Branch(vec![
                vec![SpecNode::Op("Barrier".to_string())],
                vec![],
            ])]
        );
    }

    #[test]
    fn r4_fires_on_asymmetric_tainted_branch() {
        let src = "fn f(ctx: &C) {\n\
                   let leader = ctx.rank() == 0;\n\
                   if leader { ctx.barrier(); }\n\
                   }\n";
        let findings = check_stream(&stream_of(src));
        assert_eq!(findings.len(), 1, "{:?}", findings.len());
        assert_eq!(findings[0].rule, Rule::R4);
    }

    #[test]
    fn r4_fires_on_divergent_early_return_before_collective() {
        let src = "fn f(ctx: &C) {\n\
                   let r = ctx.rank();\n\
                   if r > 0 { return; }\n\
                   ctx.barrier();\n\
                   }\n";
        let findings = check_stream(&stream_of(src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::R4);
    }

    #[test]
    fn r4_quiet_on_symmetric_arms_and_on_return_with_no_collective_after() {
        let src = "fn sym(ctx: &C) {\n\
                   let leader = ctx.rank() == 0;\n\
                   if leader { ctx.barrier(); } else { ctx.barrier(); }\n\
                   }\n\
                   fn tail(ctx: &C) {\n\
                   ctx.barrier();\n\
                   let r = ctx.rank();\n\
                   if r > 0 { return; }\n\
                   }\n";
        let findings = check_stream(&stream_of(src));
        assert!(findings.is_empty(), "unexpected: {}", findings.len());
    }

    #[test]
    fn r5_fires_on_rank_dependent_trip_count() {
        let src = "fn f(ctx: &C) {\n\
                   let mine = ctx.rank() + 1;\n\
                   for _ in 0..mine { ctx.barrier(); }\n\
                   }\n";
        let findings = check_stream(&stream_of(src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::R5);
    }

    #[test]
    fn r5_quiet_on_replicated_trip_count_and_op_free_body() {
        let src = "fn a(ctx: &C) {\n\
                   let rounds = ctx.allreduce_max_u64(3);\n\
                   for _ in 0..rounds { ctx.barrier(); }\n\
                   }\n\
                   fn b(ctx: &C) {\n\
                   let mine = ctx.rank() + 1;\n\
                   let mut acc = 0;\n\
                   for i in 0..mine { acc += i; }\n\
                   let _ = acc;\n\
                   }\n";
        let findings = check_stream(&stream_of(src));
        assert!(findings.is_empty(), "unexpected: {}", findings.len());
    }

    #[test]
    fn spec_json_is_stable_and_round_trips_the_shape() {
        let spec = ProtocolSpec {
            entry: "crates/core/src/parallel.rs::rank_main".to_string(),
            protocol: vec![
                SpecNode::Op("ReduceF64".to_string()),
                SpecNode::Branch(vec![vec![SpecNode::Op("SimSync".to_string())], vec![]]),
                SpecNode::Loop(vec![
                    SpecNode::Call {
                        name: "refine".to_string(),
                        body: vec![SpecNode::Op("Exchange".to_string())],
                    },
                    SpecNode::Branch(vec![vec![SpecNode::Break], vec![]]),
                ]),
                SpecNode::Op("Shutdown".to_string()),
            ],
        };
        let a = spec.to_json();
        let b = spec.to_json();
        assert_eq!(a, b, "writer must be deterministic");
        assert!(a.starts_with('{') && a.ends_with('\n'));
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"!break\""));
        assert!(a.contains("\"call\": \"refine\""));
    }

    #[test]
    fn nfa_accepts_spec_traces_and_rejects_mutations() {
        let spec = ProtocolSpec {
            entry: "e".to_string(),
            protocol: vec![
                SpecNode::Op("ReduceF64".to_string()),
                SpecNode::Loop(vec![
                    SpecNode::Op("Exchange".to_string()),
                    SpecNode::Op("SimSync".to_string()),
                    SpecNode::Branch(vec![vec![SpecNode::Break], vec![]]),
                ]),
                SpecNode::Op("Shutdown".to_string()),
            ],
        };
        let nfa = Nfa::from_spec(&spec);
        // Zero, one, and two loop iterations all conform.
        assert!(nfa.accepts(&["ReduceF64", "Shutdown"]));
        assert!(nfa.accepts(&["ReduceF64", "Exchange", "SimSync", "Shutdown"]));
        assert!(nfa.accepts(&[
            "ReduceF64",
            "Exchange",
            "SimSync",
            "Exchange",
            "SimSync",
            "Shutdown"
        ]));
        // Mutations: dropped op, reorder, missing shutdown, trailing junk.
        assert!(!nfa.accepts(&["Exchange", "SimSync", "Shutdown"]));
        assert!(!nfa.accepts(&["ReduceF64", "SimSync", "Exchange", "Shutdown"]));
        assert!(!nfa.accepts(&["ReduceF64", "Exchange", "SimSync"]));
        assert!(!nfa.accepts(&["ReduceF64", "Shutdown", "Barrier"]));
        // Partial loop iteration (Exchange without SimSync) must not sneak out.
        assert!(!nfa.accepts(&["ReduceF64", "Exchange", "Shutdown"]));
    }

    #[test]
    fn nfa_handles_divergent_return_arm() {
        let spec = ProtocolSpec {
            entry: "e".to_string(),
            protocol: vec![
                SpecNode::Branch(vec![vec![SpecNode::Return], vec![]]),
                SpecNode::Op("Barrier".to_string()),
                SpecNode::Op("Shutdown".to_string()),
            ],
        };
        let nfa = Nfa::from_spec(&spec);
        // Returning arm skips the barrier but still shuts down.
        assert!(nfa.accepts(&["Shutdown"]));
        assert!(nfa.accepts(&["Barrier", "Shutdown"]));
        assert!(!nfa.accepts(&["Barrier"]));
    }
}
