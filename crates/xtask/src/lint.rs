//! The lint engine: a comment/string-aware line scanner plus the rule
//! implementations described in the crate root docs.
//!
//! Deliberately std-only and token-based (no `syn`): the build container
//! is offline, and every invariant checked here is expressible on the
//! stripped token stream. The cost is a documented blind spot: `F1`
//! only sees comparisons with a float *literal* operand (variable ==
//! variable comparisons of `f64` need type knowledge), and test regions
//! are recognized as brace-delimited items under a `#[cfg(test)]`
//! attribute on its own line — anywhere in the file, not just the tail.
//!
//! The R4/R5 phase-graph checks live in [`crate::phasegraph`] and are
//! invoked from here as part of the same pass.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Nondeterministic hash container in a deterministic path.
    D1,
    /// Float equality against a literal outside epsilon helpers.
    F1,
    /// Manual 64-bit id pack/unpack outside `key.rs`.
    F2,
    /// `unsafe` without a `// SAFETY:` comment.
    U1,
    /// `unwrap`/`expect` in non-test library code.
    P1,
    /// Crate-root doc invariants missing.
    C1,
    /// `ctx.exchange()` not paired with `finish` on the token stream:
    /// early `return`/`?`/`break` inside a phase, overlapping phases, or
    /// a phase whose scope ends before `finish`.
    R1,
    /// Collective call inside a rank-divergent conditional (a
    /// conditional whose condition reads rank-local data).
    R2,
    /// Atomic memory orderings outside `crates/runtime` (and the
    /// dependency shims) require a justified suppression.
    R3,
    /// Branch-arm protocol mismatch: the arms of a rank-divergent
    /// conditional (condition tainted by rank-local data, tracked
    /// through assignments) have different collective effect — either
    /// different collective sequences, or a divergent early exit
    /// (`return`/`break`/`continue`) that skips collectives some ranks
    /// still execute. Semantic generalization of the syntactic `R2`.
    R4,
    /// Collective inside a loop whose trip count derives from
    /// rank-local data rather than a replicated/allreduced value: ranks
    /// run different iteration counts and the protocol diverges.
    R5,
    /// Wall-clock reads (`Instant::now` / `SystemTime::now`) on traced
    /// solver/runtime paths outside the sanctioned `timing.rs` module:
    /// a wall-clock value reaching a trace or `BENCH_*.json` breaks the
    /// bit-identical determinism contract.
    T1,
    /// Collective/exchange payload classified `Unbounded` by the cost
    /// analysis: the shipped volume derives from no recognized solver
    /// quantity (no seed, no parameter, no bounded loop) — the
    /// per-file face of the `xtask cost` spec, like R4/R5 for the
    /// protocol spec.
    M1,
    /// Per-iteration allocation on a traced hot path: `Vec::new()` /
    /// `vec![]` grown with `push`/`extend` inside a loop of an
    /// `Event::Enter`/`Event::Exit`-bracketed phase region, without a
    /// dominating `reserve`/`with_capacity`.
    A1,
    /// Checkpoint I/O inside a traced phase region: a
    /// `CheckpointStore` access (`save_slot`/`read_slot`) or a
    /// checkpoint serialization helper called between `Event::Enter`
    /// and `Event::Exit`. Checkpointing is bookkeeping, not algorithm
    /// work — inside a phase bracket it distorts the per-phase clock
    /// attribution the paper's Figure 8 breakdown rests on, so it must
    /// happen at level boundaries outside every traced region.
    X1,
    /// Suppression comment without a reason.
    Sup,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 16] = [
        Rule::D1,
        Rule::F1,
        Rule::F2,
        Rule::U1,
        Rule::P1,
        Rule::C1,
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::T1,
        Rule::M1,
        Rule::A1,
        Rule::X1,
        Rule::Sup,
    ];

    /// Stable textual id (used in reports and suppression comments).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::F1 => "F1",
            Rule::F2 => "F2",
            Rule::U1 => "U1",
            Rule::P1 => "P1",
            Rule::C1 => "C1",
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::T1 => "T1",
            Rule::M1 => "M1",
            Rule::A1 => "A1",
            Rule::X1 => "X1",
            Rule::Sup => "SUP",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Serialize as a JSON object (std-only writer).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Version of the JSON report layout. Bump when the shape of the report
/// (not the rule set) changes, so downstream diffing of lint baselines
/// can detect incompatible layouts; adding rules only adds `counts`
/// keys. Version 2 introduced the field itself alongside rules R1–R3;
/// version 3 added `bench_snapshot_schema_version`; version 4 added the
/// phase-graph rules R4/R5 and `protocol_spec_schema_version`; version
/// 5 added the cost rules M1/A1 and `cost_spec_schema_version`; version
/// 6 added the checkpoint-placement rule X1.
pub const JSON_SCHEMA_VERSION: u32 = 6;

/// The `schema_version` of `BENCH_louvain.json` emitted by
/// `louvain-bench bench-snapshot`, republished here so `xtask --json`
/// consumers learn about snapshot compatibility from one report. Must
/// track `louvain_bench::snapshot::SCHEMA_VERSION` (xtask deliberately
/// has no dependencies, so a source-reading test enforces the match).
pub const BENCH_SNAPSHOT_SCHEMA_VERSION: u64 = 5;

/// Render findings as a JSON report: schema version, rule counts, and
/// the finding list.
#[must_use]
pub fn to_json_report(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        counts.insert(rule.id(), 0);
    }
    for f in findings {
        *counts.entry(f.rule.id()).or_insert(0) += 1;
    }
    let counts_json: Vec<String> = counts.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    let list: Vec<String> = findings
        .iter()
        .map(|f| format!("    {}", f.to_json()))
        .collect();
    format!(
        "{{\n  \"schema_version\": {},\n  \"bench_snapshot_schema_version\": {},\n  \"protocol_spec_schema_version\": {},\n  \"cost_spec_schema_version\": {},\n  \"total\": {},\n  \"counts\": {{{}}},\n  \"findings\": [\n{}\n  ]\n}}",
        JSON_SCHEMA_VERSION,
        BENCH_SNAPSHOT_SCHEMA_VERSION,
        crate::phasegraph::PROTOCOL_SPEC_SCHEMA_VERSION,
        crate::costgraph::COST_SPEC_SCHEMA_VERSION,
        findings.len(),
        counts_json.join(","),
        list.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Scanner: split source into per-line (code, comment) views.
// ---------------------------------------------------------------------------

/// One source line with comments/strings separated from code.
#[derive(Debug, Default, Clone)]
pub(crate) struct LineView {
    /// Code with comments removed and string contents blanked.
    pub(crate) code: String,
    /// Concatenated comment text on this line.
    pub(crate) comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScanState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Strip comments and string contents, preserving line structure.
///
/// Handles nested block comments, escaped quotes, raw strings with up
/// to arbitrary `#` counts, char literals, and lifetimes.
pub(crate) fn scan_lines(src: &str) -> Vec<LineView> {
    let bytes: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = LineView::default();
    let mut state = ScanState::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == ScanState::LineComment {
                state = ScanState::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            ScanState::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = ScanState::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = ScanState::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = ScanState::Str;
                    i += 1;
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string: r"..." or r#"..."# etc.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        cur.code.push('"');
                        state = ScanState::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    let n1 = bytes.get(i + 1).copied();
                    let n2 = bytes.get(i + 2).copied();
                    if n1 == Some('\\') {
                        // Escaped char literal: skip to closing quote.
                        cur.code.push_str("' '");
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if n2 == Some('\'') {
                        // Plain char literal 'x'.
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime.
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            ScanState::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            ScanState::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        ScanState::Code
                    } else {
                        ScanState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = ScanState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            ScanState::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = ScanState::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            ScanState::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        state = ScanState::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

// ---------------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------------

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone)]
struct FileClass {
    /// Test-adjacent file (`tests/`, `benches/`, `examples/`): most
    /// rules off.
    test_context: bool,
    /// D1 scope: deterministic solver/metrics source.
    deterministic_path: bool,
    /// P1 scope: library source of the four no-panic crates.
    p1_scope: bool,
    /// F1 exemption: approved epsilon-helper module.
    f1_exempt: bool,
    /// F2 exemption: the sanctioned pack/unpack module.
    f2_exempt: bool,
    /// C1 scope: crate-root file that must carry doc invariants.
    crate_root: bool,
    /// R1/R2 scope: everything except the dependency shims (which never
    /// touch the runtime's collective surface).
    race_scope: bool,
    /// R3 exemption: the runtime implementation and the shims are the
    /// only places allowed to use atomics without a suppression.
    r3_exempt: bool,
    /// T1 scope: traced solver/runtime/trace source, where wall-clock
    /// reads are banned outside the sanctioned `timing.rs` module.
    t1_scope: bool,
    /// M1/A1 scope: solver-crate source — the same surface the
    /// `xtask cost` spec classifies (runtime internals implement the
    /// collectives and are exempt by construction).
    cost_scope: bool,
}

fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    let in_dir = |dir: &str| -> bool {
        rel.starts_with(&format!("{dir}/")) || rel.contains(&format!("/{dir}/"))
    };
    let test_context = in_dir("tests") || in_dir("benches") || in_dir("examples");
    let deterministic_path =
        rel.starts_with("crates/core/src/") || rel.starts_with("crates/metrics/src/");
    let p1_scope = ["core", "runtime", "hashtable", "graph"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    let f1_exempt = rel.ends_with("/dq.rs") || rel.ends_with("/modularity.rs");
    let f2_exempt = rel == "crates/hashtable/src/key.rs";
    let crate_root = !rel.starts_with("shims/")
        && (rel == "src/lib.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/lib.rs")
                && rel.matches('/').count() == 3));
    let race_scope = !rel.starts_with("shims/");
    let r3_exempt = rel.starts_with("crates/runtime/src/") || rel.starts_with("shims/");
    let t1_scope = ["core", "runtime", "trace"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
        && rel != "crates/core/src/timing.rs";
    let cost_scope = rel.starts_with("crates/core/src/");
    FileClass {
        test_context,
        deterministic_path,
        p1_scope,
        f1_exempt,
        f2_exempt,
        crate_root,
        race_scope,
        r3_exempt,
        t1_scope,
        cost_scope,
    }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

/// Suppressions active per line: rule → set of suppressed line numbers.
struct Suppressions {
    /// (line, rule) pairs; a suppression on line L covers L and L+1.
    allowed: Vec<(usize, Rule)>,
    /// `SUP` findings for malformed suppressions.
    malformed: Vec<(usize, String)>,
}

/// Parse suppression comments: `lint: allow(D1, F1) — reason`.
fn collect_suppressions(lines: &[LineView]) -> Suppressions {
    let mut allowed = Vec::new();
    let mut malformed = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.comment.find("lint: allow(") else {
            continue;
        };
        let rest = &line.comment[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            malformed.push((lineno, "unclosed `lint: allow(` suppression".to_string()));
            continue;
        };
        let ids = &rest[..close];
        let mut rules = Vec::new();
        let mut bad_id = None;
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_id(id) {
                Some(r) => rules.push(r),
                None => bad_id = Some(id.to_string()),
            }
        }
        if let Some(id) = bad_id {
            malformed.push((lineno, format!("unknown rule `{id}` in suppression")));
            continue;
        }
        if rules.is_empty() {
            malformed.push((lineno, "suppression names no rules".to_string()));
            continue;
        }
        // Mandatory reason: non-separator text after the ')'.
        let reason: String = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim()
            .to_string();
        if reason.is_empty() {
            malformed.push((
                lineno,
                "suppression missing mandatory reason (`// lint: allow(RULE) — why`)".to_string(),
            ));
            continue;
        }
        for r in rules {
            allowed.push((lineno, r));
        }
    }
    Suppressions { allowed, malformed }
}

impl Suppressions {
    fn covers(&self, line: usize, rule: Rule) -> bool {
        self.allowed
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `code` contain `word` as a whole token?
fn has_token(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_char(code[..abs].chars().next_back().unwrap_or(' '));
        let after = code[abs + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Does the text around position `at` (an operator site) involve a
/// floating-point literal? Scans outward to expression delimiters.
fn float_literal_near(code: &str, at: usize, op_len: usize) -> bool {
    let delims: &[char] = &[',', ';', '(', ')', '{', '}', '[', ']', '&', '|'];
    let left_start = code[..at].rfind(delims).map_or(0, |p| p + 1);
    let right_end = code[at + op_len..]
        .find(delims)
        .map_or(code.len(), |p| at + op_len + p);
    let left = &code[left_start..at];
    let right = &code[at + op_len..right_end];
    contains_float_literal(left) || contains_float_literal(right)
}

/// Detect a float literal (`1.0`, `0.5e3`, `1e-9`) that is not a tuple
/// field access (`e.0`) or a method call on an integer (`1.max(..)`).
fn contains_float_literal(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() {
            // Char before the digit run must not be ident-ish or '.'.
            let run_start = i;
            let before = if run_start == 0 {
                ' '
            } else {
                chars[run_start - 1]
            };
            let mut j = i;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
            if !is_ident_char(before) && before != '.' {
                // `12.`, `12.3`, `12e-4`, `12E4` are float-literal shapes.
                if j < chars.len() && chars[j] == '.' {
                    // Exclude method calls like `1.max(2)`: float only if
                    // the char after '.' is a digit, whitespace, or end.
                    let after_dot = chars.get(j + 1).copied().unwrap_or(' ');
                    if after_dot.is_ascii_digit() || !is_ident_char(after_dot) {
                        return true;
                    }
                } else if j < chars.len() && (chars[j] == 'e' || chars[j] == 'E') {
                    let sign_or_digit = chars.get(j + 1).copied().unwrap_or(' ');
                    if sign_or_digit.is_ascii_digit()
                        || sign_or_digit == '+'
                        || sign_or_digit == '-'
                    {
                        return true;
                    }
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Cross-line passes (R1/R2): a flat character stream over the non-test
// code region, each character tagged with its 1-based line number.
// Comments and string contents are already stripped by the scanner, so
// token matching on the stream is sound.
// ---------------------------------------------------------------------------

fn code_stream(lines: &[LineView], end: usize) -> Vec<(char, usize)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().take(end).enumerate() {
        for c in line.code.chars() {
            out.push((c, idx + 1));
        }
        // Line boundary acts as whitespace so tokens never merge.
        out.push((' ', idx + 1));
    }
    out
}

/// Per-line mask: `true` when the line belongs to a `#[cfg(test)]`
/// region — the attribute line through the end of the item it gates
/// (matching close brace, or `;` for a braceless item). Recognizes such
/// regions anywhere in the file, not just the file-tail convention.
pub(crate) fn test_region_mask(lines: &[LineView]) -> Vec<bool> {
    let stream = code_stream(lines, lines.len());
    let mut mask = vec![false; lines.len()];
    for idx in 0..lines.len() {
        if lines[idx].code.trim() != "#[cfg(test)]" {
            continue;
        }
        let attr_line = idx + 1;
        let mut p = 0;
        while p < stream.len() && stream[p].1 <= attr_line {
            p += 1;
        }
        let mut end_line = lines.len();
        while p < stream.len() {
            match stream[p].0 {
                '{' => {
                    let close = block_end(&stream, p);
                    end_line = stream.get(close - 1).map_or(lines.len(), |&(_, l)| l);
                    break;
                }
                ';' => {
                    end_line = stream[p].1;
                    break;
                }
                _ => p += 1,
            }
        }
        for m in mask.iter_mut().take(end_line).skip(idx) {
            *m = true;
        }
    }
    mask
}

/// Like [`code_stream`], but lines masked as test regions are dropped
/// entirely (their line numbers simply never appear in the stream).
pub(crate) fn code_stream_masked(lines: &[LineView], mask: &[bool]) -> Vec<(char, usize)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for c in line.code.chars() {
            out.push((c, idx + 1));
        }
        out.push((' ', idx + 1));
    }
    out
}

/// Is `pat` present at `i` in the stream, character for character?
pub(crate) fn matches_at(stream: &[(char, usize)], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, pc)| stream.get(i + k).map(|&(c, _)| c) == Some(pc))
}

/// Is keyword `kw` at `i`, with identifier boundaries on both sides?
pub(crate) fn keyword_at(stream: &[(char, usize)], i: usize, kw: &str) -> bool {
    if !matches_at(stream, i, kw) {
        return false;
    }
    let before_ok = i == 0 || !is_ident_char(stream[i - 1].0);
    let after_ok = stream
        .get(i + kw.len())
        .is_none_or(|&(c, _)| !is_ident_char(c));
    before_ok && after_ok
}

pub(crate) fn skip_ws(stream: &[(char, usize)], mut i: usize) -> usize {
    while stream.get(i).is_some_and(|&(c, _)| c.is_whitespace()) {
        i += 1;
    }
    i
}

/// An open `Exchange` phase being tracked by the R1 state machine.
struct OpenPhase {
    start_line: usize,
    /// Brace depth at the `ctx.exchange()` call: the phase must `finish`
    /// before this scope closes.
    start_depth: i32,
    /// Brace depths (and optional labels) of loops opened *after* the
    /// phase started; a plain `break`/`continue` is fine while one is
    /// active, and a labeled one is fine when its target is in here —
    /// the jump lands after/at a loop that is still inside the phase,
    /// before `finish()`.
    loops: Vec<(i32, Option<String>)>,
    /// A `for`/`while`/`loop` keyword was seen and its body `{` is
    /// pending (armed at this paren depth, with the loop's label if it
    /// had one).
    pending_loop: Option<(i32, Option<String>)>,
}

/// The `'label` immediately preceding a loop keyword at `i`
/// (`'outer: for …`), if any.
fn label_before(stream: &[(char, usize)], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 && stream[j - 1].0.is_whitespace() {
        j -= 1;
    }
    if j == 0 || stream[j - 1].0 != ':' {
        return None;
    }
    j -= 1;
    let end = j;
    while j > 0 && is_ident_char(stream[j - 1].0) {
        j -= 1;
    }
    if j == end || j == 0 || stream[j - 1].0 != '\'' {
        return None;
    }
    Some(stream[j..end].iter().map(|&(c, _)| c).collect())
}

/// R1 — every `.exchange()` must reach exactly one `.finish()` with no
/// early exit in between. Token-level approximation of "paired on all
/// control-flow paths": flags `return`, `?`, `break`/`continue` whose
/// target loop encloses the phase (plain ones with no phase-interior
/// loop active, labeled ones whose label names no phase-interior loop),
/// plus overlapping phases and phases whose scope ends unfinished.
fn check_exchange_discipline(stream: &[(char, usize)]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut phase: Option<OpenPhase> = None;
    let mut depth = 0i32;
    let mut parens = 0i32;
    let mut i = 0usize;
    while i < stream.len() {
        let (c, line) = stream[i];
        if matches_at(stream, i, ".exchange(") {
            if let Some(ph) = &phase {
                out.push((
                    line,
                    format!(
                        "`exchange()` while the phase opened at line {} has not reached \
                         `finish()`: phases must not overlap",
                        ph.start_line
                    ),
                ));
            }
            phase = Some(OpenPhase {
                start_line: line,
                start_depth: depth,
                loops: Vec::new(),
                pending_loop: None,
            });
            i += ".exchange(".len();
            continue;
        }
        if matches_at(stream, i, ".finish(") {
            phase = None;
            i += ".finish(".len();
            continue;
        }
        let Some(ph) = phase.as_mut() else {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                '(' => parens += 1,
                ')' => parens -= 1,
                _ => {}
            }
            i += 1;
            continue;
        };
        for kw in ["for", "while", "loop"] {
            if keyword_at(stream, i, kw) {
                ph.pending_loop = Some((parens, label_before(stream, i)));
            }
        }
        if keyword_at(stream, i, "return") {
            out.push((
                line,
                format!(
                    "`return` inside the exchange phase opened at line {}: the phase \
                     never reaches `finish()` on this path and peer ranks deadlock",
                    ph.start_line
                ),
            ));
            i += "return".len();
            continue;
        }
        if keyword_at(stream, i, "break") || keyword_at(stream, i, "continue") {
            let kw_len = if stream[i].0 == 'b' { 5 } else { 8 };
            let j = skip_ws(stream, i + kw_len);
            let label: Option<String> = stream
                .get(j)
                .filter(|&&(c, _)| c == '\'')
                .map(|_| {
                    let mut k = j + 1;
                    let mut s = String::new();
                    while stream.get(k).is_some_and(|&(c, _)| is_ident_char(c)) {
                        s.push(stream[k].0);
                        k += 1;
                    }
                    s
                })
                .filter(|s| !s.is_empty());
            let escapes_phase = match &label {
                Some(l) => !ph.loops.iter().any(|(_, ll)| ll.as_deref() == Some(l)),
                None => ph.loops.is_empty(),
            };
            if escapes_phase {
                out.push((
                    line,
                    format!(
                        "`break`/`continue` jumps out of the exchange phase opened at \
                         line {}: `finish()` is skipped on this path",
                        ph.start_line
                    ),
                ));
            }
            i += kw_len;
            continue;
        }
        match c {
            '?' => out.push((
                line,
                format!(
                    "`?` early-exit inside the exchange phase opened at line {}: an \
                     error return skips `finish()` and deadlocks peer ranks",
                    ph.start_line
                ),
            )),
            '(' => parens += 1,
            ')' => parens -= 1,
            '{' => {
                depth += 1;
                if ph.pending_loop.as_ref().is_some_and(|&(p, _)| p == parens) {
                    let (_, lbl) = ph.pending_loop.take().expect("checked above");
                    ph.loops.push((depth, lbl));
                }
            }
            '}' => {
                if ph.loops.last().is_some_and(|&(d, _)| d == depth) {
                    ph.loops.pop();
                }
                depth -= 1;
                if depth < ph.start_depth {
                    out.push((
                        line,
                        format!(
                            "scope ends before the exchange phase opened at line {} \
                             reached `finish()`",
                            ph.start_line
                        ),
                    ));
                    phase = None;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(ph) = phase {
        out.push((
            ph.start_line,
            "exchange phase is never completed with `finish()`".to_string(),
        ));
    }
    out
}

/// The collective entry points of the runtime's `RankCtx`/`Exchange`
/// surface, as method-call prefixes.
const COLLECTIVE_CALLS: [&str; 11] = [
    ".barrier(",
    ".allreduce_",
    ".allgather_",
    ".broadcast_",
    ".exscan_",
    ".scan_sum_",
    ".gather_f64(",
    ".sim_sync(",
    ".sim_time_units(",
    ".exchange(",
    ".finish(",
];

/// R2 — no collective inside a rank-divergent conditional. The
/// conservative "branches on rank-local data" heuristic: any
/// `if`/`while`/`match` whose condition mentions the token `rank` (the
/// universal spelling of rank-local identity in this workspace) is
/// considered divergent, and its branch bodies — including the attached
/// `else`/`else if` chain — must not enter a collective: ranks taking
/// different arms would enter different collective sequences.
fn check_rank_divergent_collectives(stream: &[(char, usize)]) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < stream.len() {
        let kw = ["if", "while", "match"]
            .into_iter()
            .find(|kw| keyword_at(stream, i, kw));
        let Some(kw) = kw else {
            i += 1;
            continue;
        };
        let cond_line = stream[i].1;
        // Condition: everything up to the body `{` at bracket depth 0.
        let mut j = i + kw.len();
        let mut cond = String::new();
        let mut nest = 0i32;
        while let Some(&(c, _)) = stream.get(j) {
            match c {
                '(' | '[' => nest += 1,
                ')' | ']' => nest -= 1,
                '{' if nest == 0 => break,
                ';' if nest == 0 => break, // not a block construct after all
                _ => {}
            }
            cond.push(c);
            j += 1;
        }
        if stream.get(j).map(|&(c, _)| c) != Some('{') || !has_token(&cond, "rank") {
            i += kw.len();
            continue;
        }
        // Scan the branch body and any else/else-if chain.
        let mut region_end = block_end(stream, j);
        scan_region_for_collectives(stream, j, region_end, kw, cond_line, &mut out);
        loop {
            let k = skip_ws(stream, region_end);
            if !keyword_at(stream, k, "else") {
                break;
            }
            let mut b = skip_ws(stream, k + "else".len());
            if keyword_at(stream, b, "if") {
                // Skip the else-if condition up to its body brace.
                let mut nest = 0i32;
                while let Some(&(c, _)) = stream.get(b) {
                    match c {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        '{' if nest == 0 => break,
                        _ => {}
                    }
                    b += 1;
                }
            }
            if stream.get(b).map(|&(c, _)| c) != Some('{') {
                break;
            }
            region_end = block_end(stream, b);
            scan_region_for_collectives(stream, b, region_end, kw, cond_line, &mut out);
        }
        i += kw.len();
    }
    out.sort();
    out.dedup_by_key(|(line, _)| *line);
    out
}

/// Index one past the `}` matching the `{` at `open`.
pub(crate) fn block_end(stream: &[(char, usize)], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(&(c, _)) = stream.get(i) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    stream.len()
}

fn scan_region_for_collectives(
    stream: &[(char, usize)],
    start: usize,
    end: usize,
    kw: &str,
    cond_line: usize,
    out: &mut Vec<(usize, String)>,
) {
    for i in start..end {
        for call in COLLECTIVE_CALLS {
            if matches_at(stream, i, call) {
                out.push((
                    stream[i].1,
                    format!(
                        "collective `{call}..)` inside a rank-divergent `{kw}` (condition \
                         on line {cond_line} reads `rank`): ranks taking different \
                         branches enter different collective sequences and deadlock \
                         or corrupt the protocol"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The pass.
// ---------------------------------------------------------------------------

/// Marker that lets seeded fixture files masquerade as workspace files:
/// `// lint-fixture-path: crates/core/src/example.rs` on the first line.
const FIXTURE_PATH_MARKER: &str = "lint-fixture-path:";

/// Lint one file's source. `rel_path` is the workspace-relative path
/// used for rule applicability (fixtures may override it via the
/// `lint-fixture-path` marker).
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lines = scan_lines(src);
    // Fixture masquerading (see FIXTURE_PATH_MARKER docs).
    let effective_path: String = lines
        .first()
        .and_then(|l| {
            l.comment.find(FIXTURE_PATH_MARKER).map(|p| {
                l.comment[p + FIXTURE_PATH_MARKER.len()..]
                    .trim()
                    .to_string()
            })
        })
        .unwrap_or_else(|| rel_path.replace('\\', "/"));
    let class = classify(&effective_path);
    let sup = collect_suppressions(&lines);
    let mut findings = Vec::new();

    for (lineno, msg) in &sup.malformed {
        findings.push(Finding {
            path: rel_path.to_string(),
            line: *lineno,
            rule: Rule::Sup,
            message: msg.clone(),
        });
    }

    // Test regions: any brace-delimited `#[cfg(test)]` item — the usual
    // file-tail `mod tests`, but also mid-file test modules.
    let test_mask = test_region_mask(&lines);

    let push = |lineno: usize, rule: Rule, message: String, findings: &mut Vec<Finding>| {
        if !sup.covers(lineno, rule) {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: lineno,
                rule,
                message,
            });
        }
    };

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        let in_test_region = class.test_context || test_mask[idx];

        // U1 — applies everywhere, test code included: unsafe is unsafe.
        if has_token(code, "unsafe") {
            let has_safety = (idx.saturating_sub(3)..=idx)
                .any(|k| lines.get(k).is_some_and(|l| l.comment.contains("SAFETY:")));
            if !has_safety {
                push(
                    lineno,
                    Rule::U1,
                    "`unsafe` without a `// SAFETY:` comment on or above the block".to_string(),
                    &mut findings,
                );
            }
        }

        if in_test_region {
            continue;
        }

        // D1 — deterministic solver/metrics paths must not touch
        // randomized-hasher containers at all.
        if class.deterministic_path && (has_token(code, "HashMap") || has_token(code, "HashSet")) {
            push(
                lineno,
                Rule::D1,
                "HashMap/HashSet in a deterministic solver/metrics path: iteration order \
                 follows the randomized hasher; use BTreeMap/BTreeSet or a sorted drain"
                    .to_string(),
                &mut findings,
            );
        }

        // F1 — float equality with a literal operand.
        if !class.f1_exempt {
            let mut search = 0usize;
            loop {
                let eq = code[search..].find("==");
                let ne = code[search..].find("!=");
                let pos = match (eq, ne) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                let abs = search + pos;
                // Skip `<=`, `>=`, `!=` handled, and `===`-like runs.
                let prev = code[..abs].chars().next_back().unwrap_or(' ');
                if prev != '<' && prev != '>' && float_literal_near(code, abs, 2) {
                    push(
                        lineno,
                        Rule::F1,
                        "float `==`/`!=` outside the epsilon helpers in dq.rs/modularity.rs: \
                         compare via an epsilon helper or justify exact equality"
                            .to_string(),
                        &mut findings,
                    );
                    break; // one finding per line is enough
                }
                search = abs + 2;
            }
        }

        // F2 — manual id pack/unpack.
        if !class.f2_exempt && (code.contains("<< 32") || code.contains(">> 32")) {
            push(
                lineno,
                Rule::F2,
                "manual 64-bit id pack/unpack: use louvain_hash::key::{pack_key, unpack_key} \
                 so narrowing stays in one audited place"
                    .to_string(),
                &mut findings,
            );
        }

        // P1 — panicking calls in library code of the no-panic crates.
        if class.p1_scope && (code.contains(".unwrap()") || code.contains(".expect(")) {
            push(
                lineno,
                Rule::P1,
                "unwrap()/expect() in library code: return a Result, handle the case, or \
                 suppress with a reason why the panic is unreachable/fatal-by-design"
                    .to_string(),
                &mut findings,
            );
        }

        // R3 — raw atomics outside the runtime. All cross-rank
        // synchronization must go through the runtime's checked
        // collective surface; a stray Relaxed/SeqCst atomic elsewhere is
        // a side channel the protocol checker cannot see.
        if !class.r3_exempt {
            const ATOMIC_ORDERINGS: [&str; 5] = [
                "Ordering::Relaxed",
                "Ordering::SeqCst",
                "Ordering::Acquire",
                "Ordering::Release",
                "Ordering::AcqRel",
            ];
            if let Some(ord) = ATOMIC_ORDERINGS.iter().find(|o| code.contains(*o)) {
                push(
                    lineno,
                    Rule::R3,
                    format!(
                        "`{ord}` atomic outside crates/runtime: cross-rank state must go \
                         through the runtime's collective surface (or suppress with a \
                         justification for why this atomic cannot race the protocol)"
                    ),
                    &mut findings,
                );
            }
        }

        // T1 — no wall-clock reads on traced solver/runtime paths.
        // `timing.rs` is the single sanctioned wrapper (`Stopwatch`);
        // anywhere else, a wall-clock value is one assignment away from
        // leaking into a deterministic output.
        if class.t1_scope && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            push(
                lineno,
                Rule::T1,
                "wall-clock read on a traced solver/runtime path: route it through \
                 `louvain_core::timing::Stopwatch` (timing.rs is the only sanctioned \
                 wall-clock module) so no wall-clock value can reach a trace or \
                 BENCH_*.json snapshot"
                    .to_string(),
                &mut findings,
            );
        }
    }

    // R1/R2/R4/R5 — cross-line collective-discipline passes over the
    // non-test code region.
    if class.race_scope && !class.test_context {
        let stream = code_stream_masked(&lines, &test_mask);
        for (lineno, message) in check_exchange_discipline(&stream) {
            push(lineno, Rule::R1, message, &mut findings);
        }
        for (lineno, message) in check_rank_divergent_collectives(&stream) {
            push(lineno, Rule::R2, message, &mut findings);
        }
        for pf in crate::phasegraph::check_stream(&stream) {
            push(pf.line, pf.rule, pf.message, &mut findings);
        }
        // M1/A1 — communication-cost classification, solver crate only.
        if class.cost_scope {
            for pf in crate::costgraph::check_stream_cost(&stream) {
                push(pf.line, pf.rule, pf.message, &mut findings);
            }
        }
    }

    // C1 — crate-root doc invariants.
    if class.crate_root {
        let has_missing_docs = lines.iter().any(|l| {
            l.code.contains("#![warn(missing_docs)]") || l.code.contains("#![deny(missing_docs)]")
        });
        let has_paper_ref = lines.iter().any(|l| {
            let t = &l.comment;
            t.contains('§')
                || t.contains("Section I")
                || t.contains("Section V")
                || t.contains("Section II")
                || t.contains("Section III")
                || t.contains("Section IV")
                || t.contains("Algorithm ")
                || t.contains("Equation ")
                || t.contains("Figure ")
                || t.contains("Table ")
        });
        if !has_missing_docs {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: 1,
                rule: Rule::C1,
                message: "crate root must carry `#![warn(missing_docs)]`".to_string(),
            });
        }
        if !has_paper_ref {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: 1,
                rule: Rule::C1,
                message: "crate root docs must cross-reference the paper (a `§`, Section, \
                          Algorithm, Equation, Figure or Table citation)"
                    .to_string(),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk.
// ---------------------------------------------------------------------------

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "results"];

pub(crate) fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort(); // deterministic report order, of course
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (excluding `target/`, fixture
/// directories and dotdirs). Returns findings sorted by path and line.
///
/// # Errors
/// Propagates I/O failures from the directory walk or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort_by_key(|f| (f.path.clone(), f.line, f.rule));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_strips_comments_and_strings() {
        let src = "let x = \"HashMap // not code\"; // HashMap in comment\nlet y = 1;";
        let lines = scan_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap in comment"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn scanner_handles_raw_strings_and_chars() {
        let src = "let s = r#\"uns\"afe\"#; let c = '\"'; let l: &'static str = \"x\";";
        let lines = scan_lines(src);
        assert!(!lines[0].code.contains("afe"));
        assert!(lines[0].code.contains("&'static str"));
    }

    #[test]
    fn float_literal_detection() {
        assert!(contains_float_literal("x == 0.0"));
        assert!(contains_float_literal("1e-9 "));
        assert!(contains_float_literal("2.5"));
        assert!(!contains_float_literal("e.0"));
        assert!(!contains_float_literal("tuple.1"));
        assert!(!contains_float_literal("x == y"));
        assert!(!contains_float_literal("0x32"));
        assert!(!contains_float_literal("1.max(2)"));
    }

    #[test]
    fn d1_fires_only_in_deterministic_paths() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/core/src/foo.rs", src)
            .iter()
            .any(|f| f.rule == Rule::D1));
        assert!(lint_source("crates/graph/src/foo.rs", src)
            .iter()
            .all(|f| f.rule != Rule::D1));
    }

    #[test]
    fn suppression_with_reason_silences_and_bare_one_fires_sup() {
        let with_reason =
            "use std::collections::HashMap; // lint: allow(D1) — drained through a sorted Vec below\n";
        let fs = lint_source("crates/core/src/foo.rs", with_reason);
        assert!(fs.is_empty(), "{fs:?}");

        let bare = "use std::collections::HashMap; // lint: allow(D1)\n";
        let fs = lint_source("crates/core/src/foo.rs", bare);
        assert!(fs.iter().any(|f| f.rule == Rule::Sup));
        assert!(
            fs.iter().any(|f| f.rule == Rule::D1),
            "bare allow must not suppress"
        );
    }

    #[test]
    fn suppression_on_previous_line_covers_next_line() {
        let src = "// lint: allow(P1) — config parse failure is fatal by design\nlet x = parse().unwrap();\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_tail_is_exempt_from_p1_but_not_u1() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); unsafe { z() } }\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert!(fs.iter().all(|f| f.rule != Rule::P1));
        assert!(fs.iter().any(|f| f.rule == Rule::U1));
    }

    #[test]
    fn fixture_marker_overrides_path() {
        let src = "// lint-fixture-path: crates/core/src/fake.rs\nuse std::collections::HashSet;\n";
        let fs = lint_source("crates/xtask/tests/fixtures/d1.rs", src);
        assert!(fs.iter().any(|f| f.rule == Rule::D1));
    }

    #[test]
    fn c1_checks_crate_roots() {
        let good = "//! Crate docs citing Section IV.\n#![warn(missing_docs)]\n";
        assert!(lint_source("crates/core/src/lib.rs", good).is_empty());
        let bad = "//! No citation.\n";
        let fs = lint_source("crates/core/src/lib.rs", bad);
        assert_eq!(fs.iter().filter(|f| f.rule == Rule::C1).count(), 2);
        // Non-root files unaffected.
        assert!(lint_source("crates/core/src/other.rs", bad).is_empty());
    }

    #[test]
    fn r1_accepts_well_formed_phase_and_loop_local_breaks() {
        let src = "fn f(ctx: &mut C) {\n    let mut ex = ctx.exchange();\n    for x in xs {\n        if x == 0 { continue; }\n        if x == 9 { break; }\n        ex.send(0, x);\n    }\n    ex.finish(|_| {});\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert!(fs.iter().all(|f| f.rule != Rule::R1), "{fs:?}");
    }

    #[test]
    fn r1_accepts_labeled_break_targeting_phase_interior_loop() {
        // `break 'outer` lands right after the labeled loop — still
        // before `finish()`, so the phase is not leaked.
        let src = "fn f(ctx: &mut C) {\n    let mut ex = ctx.exchange();\n    'outer: for x in xs {\n        for y in ys {\n            if y == 0 { break 'outer; }\n            ex.send(0, x);\n        }\n    }\n    ex.finish(|_| {});\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert!(fs.iter().all(|f| f.rule != Rule::R1), "{fs:?}");
    }

    #[test]
    fn r1_fires_on_labeled_break_escaping_the_phase() {
        // Here the labeled loop encloses the `.exchange()` itself, so the
        // jump skips `finish()`.
        let src = "fn f(ctx: &mut C) {\n    'outer: for x in xs {\n        let mut ex = ctx.exchange();\n        for y in ys {\n            if y == 0 { break 'outer; }\n            ex.send(0, x);\n        }\n        ex.finish(|_| {});\n    }\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert_eq!(
            fs.iter().filter(|f| f.rule == Rule::R1).count(),
            1,
            "{fs:?}"
        );
    }

    #[test]
    fn r1_fires_on_question_mark_and_return_inside_phase() {
        let src = "fn f(ctx: &mut C) -> Result<(), E> {\n    let mut ex = ctx.exchange();\n    let v = parse(s)?;\n    if v == 0 { return Ok(()); }\n    ex.send(0, v);\n    ex.finish(|_| {});\n    Ok(())\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert_eq!(fs.iter().filter(|f| f.rule == Rule::R1).count(), 2);
    }

    #[test]
    fn r1_fires_on_scope_exit_without_finish() {
        let src = "fn f(ctx: &mut C) {\n    {\n        let mut ex = ctx.exchange();\n        ex.send(0, 1);\n    }\n}\n";
        let fs = lint_source("crates/core/src/foo.rs", src);
        assert!(fs.iter().any(|f| f.rule == Rule::R1));
    }

    #[test]
    fn r2_needs_both_rank_condition_and_collective() {
        // rank-divergent branch without a collective: clean.
        let clean =
            "fn f(ctx: &C, rank: usize) {\n    if rank == 0 { log(); }\n    ctx.barrier();\n}\n";
        assert!(lint_source("crates/core/src/foo.rs", clean)
            .iter()
            .all(|f| f.rule != Rule::R2));
        // collective in a rank-independent branch: clean.
        let clean2 = "fn f(ctx: &C, n: usize) {\n    if n > 0 { ctx.barrier(); }\n}\n";
        assert!(lint_source("crates/core/src/foo.rs", clean2)
            .iter()
            .all(|f| f.rule != Rule::R2));
        // collective in the else-branch of a rank conditional: fires.
        let bad = "fn f(ctx: &C, rank: usize) {\n    if rank == 0 { log(); } else { ctx.barrier(); }\n}\n";
        assert!(lint_source("crates/core/src/foo.rs", bad)
            .iter()
            .any(|f| f.rule == Rule::R2));
    }

    #[test]
    fn r3_exempts_runtime_and_cmp_ordering() {
        let atomic = "let x = c.fetch_add(1, Ordering::Relaxed);\n";
        assert!(lint_source("crates/core/src/foo.rs", atomic)
            .iter()
            .any(|f| f.rule == Rule::R3));
        assert!(lint_source("crates/runtime/src/foo.rs", atomic)
            .iter()
            .all(|f| f.rule != Rule::R3));
        // `std::cmp::Ordering` never matches.
        let cmp = "match a.cmp(&b) { std::cmp::Ordering::Less => {} _ => {} }\n";
        assert!(lint_source("crates/core/src/foo.rs", cmp).is_empty());
    }

    #[test]
    fn t1_bans_wall_clock_outside_timing_module() {
        let src = "let t0 = std::time::Instant::now();\n";
        assert!(lint_source("crates/core/src/parallel.rs", src)
            .iter()
            .any(|f| f.rule == Rule::T1));
        assert!(lint_source("crates/runtime/src/sim.rs", src)
            .iter()
            .any(|f| f.rule == Rule::T1));
        assert!(lint_source("crates/trace/src/lib.rs", src)
            .iter()
            .any(|f| f.rule == Rule::T1));
        // The sanctioned wall-clock module is exempt.
        assert!(lint_source("crates/core/src/timing.rs", src)
            .iter()
            .all(|f| f.rule != Rule::T1));
        // Out-of-scope crates (bench drives the harness on wall time).
        assert!(lint_source("crates/bench/src/report.rs", src)
            .iter()
            .all(|f| f.rule != Rule::T1));
        // SystemTime is just as banned.
        let st = "let now = std::time::SystemTime::now();\n";
        assert!(lint_source("crates/core/src/seq.rs", st)
            .iter()
            .any(|f| f.rule == Rule::T1));
    }

    #[test]
    fn t1_exempts_test_tail() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint_source("crates/core/src/parallel.rs", src)
            .iter()
            .all(|f| f.rule != Rule::T1));
    }

    #[test]
    fn json_report_shape() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: Rule::F1,
            message: "msg with \"quote\"".into(),
        };
        let json = to_json_report(&[f]);
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"F1\":1"));
        assert!(json.contains("\\\"quote\\\""));
    }
}
