//! Static communication-cost analysis: the symbolic volume verifier
//! behind rules `M1`/`A1` and the `xtask cost` subcommand.
//!
//! PR 5's phase graph proves the *order* of collectives; this module
//! proves their *volume*. The paper's scalability argument (Fig. 8)
//! rests on per-phase message counts — loading is O(|E|) once,
//! refinement traffic is O(n_local) per iteration, and PR 4's delta
//! compression cut state propagation from O(local_arcs) per iteration
//! to O(deltas). Nothing but a bench-drift snapshot guarded that last
//! property until now. Here an abstract interpretation over the same
//! stripped token stream assigns every collective/exchange call site a
//! symbolic cost class:
//!
//! * **payload bound** — the lattice `O(1) ≤ O(deltas) ≤ O(n_local) ≤
//!   O(local_arcs) ≤ Unbounded`, derived from the provenance of the
//!   buffer (for vector collectives), the coalescing key (for
//!   `send_keyed`: dedup bounds a phase's volume by distinct keys), or
//!   the enclosing data-bounded loops (for plain `send`);
//! * **invocation multiplicity** — `per_run`, `per_level` (inside the
//!   `max_levels` driver loop), `per_iteration` (inside the
//!   `max_inner_iterations` loop), or `rank_tainted_loop` (a loop whose
//!   trip count is rank-local — already an R5 finding, surfaced here so
//!   the spec never understates such a site).
//!
//! Buffer provenance is a deliberately *optimistic* heuristic, like the
//! taint analysis in `phasegraph`: an expression's class is the join of
//! its *recognized* components (a seed table of solver quantities,
//! function parameters, numeric literals, and a per-function assignment
//! fixpoint); unrecognized identifiers are ignored so that slice
//! plumbing such as `cache.out_srcs[off[li]..off[li + 1]]` still
//! classifies as `O(local_arcs)` via the `out_srcs` seed. Only an
//! expression in which *nothing* is recognized becomes `Unbounded` —
//! which is exactly when rule **M1** fires. Rule **A1** is a lexical
//! companion: a `Vec::new()`/`vec![]` grown with `push`/`extend` inside
//! a loop of an `Event::Enter`/`Event::Exit`-bracketed (traced) phase
//! region is a per-iteration allocation on the hot path.
//!
//! The interprocedural walk starts at the solver entry point
//! ([`crate::phasegraph::PROTOCOL_ENTRY_FN`] in
//! [`crate::phasegraph::PROTOCOL_ENTRY_FILE`]) and descends through
//! `crates/core/src` only: callees outside the solver crate are opaque
//! (their communication surface is the builtin collective API, which is
//! classified at the caller's call site). The result is emitted as the
//! schema-versioned lockfile `results/cost_spec.json` (`xtask cost`,
//! `--check`/`--update` like `xtask protocol`); the dynamic half of the
//! contract lives in `crates/xtask/tests/cost_conformance.rs`, which
//! maps each class to the PR 3/4 trace counters and rejects a seeded
//! reversion to the v1 per-arc rebuild volume.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lint::{
    block_end, code_stream_masked, is_ident_char, keyword_at, matches_at, scan_lines, skip_ws,
    test_region_mask, walk, Rule,
};
use crate::phasegraph::{
    collect_assignments, expr_tainted, extract_fns, idents_in, is_keyword, match_paren,
    prev_is_ident, read_word, taint_set, FnDef, ProtocolFinding, Stream, PROTOCOL_ENTRY_FILE,
    PROTOCOL_ENTRY_FN,
};

/// Schema version of `results/cost_spec.json`. Bump when the class
/// lattice, the site grammar, or the JSON layout changes.
///
/// v2: the lattice gained `O(frontier)` between `O(deltas)` and
/// `O(n_local)` — the active-vertex worklist of the frontier-scheduled
/// local-move phase (DESIGN.md §13).
pub const COST_SPEC_SCHEMA_VERSION: u32 = 2;

/// Directories scanned for cost sites. Only the solver crate: runtime
/// internals implement the collectives and would otherwise contribute
/// their channel plumbing as bogus sites.
const COST_DIRS: [&str; 1] = ["crates/core/src"];

// ---------------------------------------------------------------------------
// The cost lattice.
// ---------------------------------------------------------------------------

/// Symbolic payload bound of one site, per phase (for point-to-point
/// sends: messages per exchange phase; for collectives: buffer length
/// per invocation, joined with any enclosing data-bounded loops).
/// Declaration order is lattice order, so `Ord::max` is the join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PayloadClass {
    /// Constant (scalars, rank counts, fixed histogram bins).
    O1,
    /// Bounded by the migration deltas of the iteration (vertices that
    /// changed community).
    ODeltas,
    /// Bounded by the iteration's active-vertex worklist (the frontier,
    /// DESIGN.md §13). Sits between `O(deltas)` and `O(n_local)`:
    /// every mover is active, and every active vertex is local.
    OFrontier,
    /// Bounded by the rank's vertex count at the current level.
    ONLocal,
    /// Bounded by the rank's arc (In-/Out-Table entry) count.
    OLocalArcs,
    /// No recognized bound — always a defect (rule `M1`).
    Unbounded,
}

impl PayloadClass {
    /// Spec spelling; also the vocabulary of the conformance tests.
    pub fn as_str(self) -> &'static str {
        match self {
            PayloadClass::O1 => "O(1)",
            PayloadClass::ODeltas => "O(deltas)",
            PayloadClass::OFrontier => "O(frontier)",
            PayloadClass::ONLocal => "O(n_local)",
            PayloadClass::OLocalArcs => "O(local_arcs)",
            PayloadClass::Unbounded => "Unbounded",
        }
    }
}

/// How often a site runs, relative to the solver driver loops.
/// Declaration order is lattice order (more often = higher).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Multiplicity {
    /// Outside every driver loop.
    PerRun,
    /// Inside the `max_levels` loop (Algorithm 2's outer loop).
    PerLevel,
    /// Inside the `max_inner_iterations` loop (Algorithm 3).
    PerIteration,
    /// Inside a loop with a rank-local trip count (an R5 hazard; the
    /// spec records it so the bound is never silently understated).
    RankTainted,
}

impl Multiplicity {
    /// Stable string form used in `cost_spec.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            Multiplicity::PerRun => "per_run",
            Multiplicity::PerLevel => "per_level",
            Multiplicity::PerIteration => "per_iteration",
            Multiplicity::RankTainted => "rank_tainted_loop",
        }
    }
}

/// Abstract class of an expression: an optional ground bound joined
/// with the (still-unbound) function parameters it derives from. A
/// value with neither is *unknown* — nothing about it was recognized.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct AbsClass {
    base: Option<PayloadClass>,
    params: BTreeSet<String>,
}

impl AbsClass {
    fn known(c: PayloadClass) -> Self {
        AbsClass {
            base: Some(c),
            params: BTreeSet::new(),
        }
    }

    /// Nothing recognized: no ground bound, no parameter provenance.
    fn is_unknown(&self) -> bool {
        self.base.is_none() && self.params.is_empty()
    }

    fn join(&mut self, other: &AbsClass) {
        self.base = match (self.base, other.base) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.params.extend(other.params.iter().cloned());
    }
}

/// Ground class of a recognized solver quantity. The table is the
/// analyzer's domain knowledge: it names the buffers and counts the
/// solver actually ships (DESIGN.md §12 documents the heuristic). An
/// identifier absent here is either bound through a parameter or an
/// assignment, or contributes nothing to its expression's class.
fn seed_class(w: &str) -> Option<PayloadClass> {
    Some(match w {
        // Migration deltas: the PR 4 steady-state currency.
        "migrated" | "deltas" | "moved" => PayloadClass::ODeltas,
        // The active-vertex worklist of the frontier scheduler (§13).
        "frontier" | "worklist" => PayloadClass::OFrontier,
        // Arc-shaped collections (In-/Out-Table rows, edge chunks).
        "in_table" | "out_table" | "chunk" | "edges" | "triples" | "pairs" | "out_srcs"
        | "arcs" => PayloadClass::OLocalArcs,
        // Vertex-shaped collections and counts. `loads` is the
        // per-vertex arc-load vector the balanced partition builder
        // allreduces once per level boundary (DESIGN.md §15).
        "local_n" | "label" | "labels" | "labels_f64" | "owned" | "distinct" | "local" | "best"
        | "orig_comm" | "srcs" | "tot" | "size_local" | "size_snap" | "internal" | "m_u" | "k"
        | "size" | "loads" => PayloadClass::ONLocal,
        // Constants: rank counts, fixed histogram geometry, scalars.
        "hist" | "bins" | "histogram_bins" | "p" | "ranks" | "num_ranks" | "counts" | "offsets"
        | "dest" | "rank" => PayloadClass::O1,
        _ => return None,
    })
}

/// Class of the expression `stream[s..e]`: the join of every
/// *recognized* component (seeds, environment entries, numeric
/// literals); unrecognized identifiers are skipped. Unknown only when
/// nothing at all is recognized.
fn expr_class(stream: &Stream, s: usize, e: usize, env: &BTreeMap<String, AbsClass>) -> AbsClass {
    let mut acc = AbsClass::default();
    let mut i = s;
    while i < e.min(stream.len()) {
        let c = stream[i].0;
        if is_ident_char(c) && !prev_is_ident(stream, i) {
            let w = read_word(stream, i);
            let len = w.len().max(1);
            if w.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                acc.join(&AbsClass::known(PayloadClass::O1));
            } else if !is_keyword(&w) && w != "_" {
                if let Some(cl) = seed_class(&w) {
                    acc.join(&AbsClass::known(cl));
                } else if let Some(a) = env.get(&w) {
                    acc.join(&a.clone());
                }
            }
            i += len;
        } else {
            i += 1;
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Per-function cost summaries.
// ---------------------------------------------------------------------------

/// Why a loop matters to the cost of the sites it encloses.
#[derive(Clone, Debug)]
enum LoopMark {
    /// The `max_levels` driver loop: multiplicity becomes `per_level`.
    Level,
    /// The `max_inner_iterations` loop: `per_iteration`.
    Iteration,
    /// Rank-local trip count: `rank_tainted_loop`.
    Tainted,
    /// Data-bounded loop: its class joins enclosed payload bounds.
    Data(AbsClass),
}

/// One node of a function's cost summary. Branches are flattened — a
/// site on any arm is a site; only loops and calls shape the cost.
#[derive(Clone, Debug)]
enum CNode {
    Site {
        /// Source-order index within the enclosing function — the
        /// stable spec identity (line numbers would churn the lockfile
        /// on every unrelated edit).
        ordinal: usize,
        op: String,
        /// For `send`: `O(1)` (volume comes from the loop marks). For
        /// `send_keyed`: the coalescing key's class. For vector
        /// collectives: the buffer argument's class.
        payload: AbsClass,
        keyed: bool,
        line: usize,
    },
    Call {
        name: String,
        method: bool,
        args: Vec<AbsClass>,
    },
    Loop {
        mark: LoopMark,
        body: Vec<CNode>,
    },
}

/// The collective surface classified at call sites (the
/// `phasegraph::BUILTIN_EFFECTS` names minus the structural
/// `exchange`/`finish` pair, plus the point-to-point sends). Each entry
/// carries whether its first argument is a payload buffer.
const SITE_OPS: [(&str, bool); 18] = [
    ("barrier", false),
    ("allreduce_sum", false),
    ("allreduce_max", false),
    ("allreduce_min", false),
    ("allreduce_sum_u64", false),
    ("allreduce_max_u64", false),
    ("allreduce_any", false),
    ("allreduce_all", false),
    ("allreduce_sum_vec", true),
    ("allgather_f64", true),
    ("gather_f64", true),
    ("broadcast_f64", true),
    ("exscan_sum_u64", false),
    ("scan_sum_u64", false),
    ("sim_sync", false),
    ("sim_time_units", false),
    ("send", false),
    ("send_keyed", false),
];

fn site_op(w: &str) -> Option<bool> {
    SITE_OPS
        .iter()
        .find(|&&(name, _)| name == w)
        .map(|&(_, vec_payload)| vec_payload)
}

/// Split a call's argument span `[s, e)` at top-level commas.
fn split_args(stream: &Stream, s: usize, e: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = skip_ws(stream, s);
    if start >= e {
        return out;
    }
    let mut i = start;
    while i < e {
        let c = stream[i].0;
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push((start, i));
                start = skip_ws(stream, i + 1);
            }
            _ => {}
        }
        i += 1;
    }
    if start < e {
        out.push((start, e));
    }
    out
}

/// Does the argument span hold an array literal (`&[..]`/`[..]`)? Those
/// are fixed-arity buffers — `O(1)` regardless of element provenance
/// (e.g. `&[owned.len() as f64]`).
fn is_array_literal(stream: &Stream, s: usize, e: usize) -> bool {
    let mut i = skip_ws(stream, s);
    if i < e && stream[i].0 == '&' {
        i = skip_ws(stream, i + 1);
    }
    i < e && stream[i].0 == '['
}

/// Parameter names of a function, one `Vec` per position (a tuple
/// pattern binds several names to one position). The `self` receiver is
/// skipped so positions align with method-call arguments.
fn param_names(stream: &Stream, f: &FnDef) -> Vec<Vec<String>> {
    let s = f.params_open + 1;
    let e = f.params_end.saturating_sub(1);
    let mut chunks = Vec::new();
    let mut depth = 0i32;
    let mut start = s;
    let mut i = s;
    while i < e {
        let c = stream[i].0;
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '<' => depth += 1,
            '>' if stream[i - 1].0 != '-' && stream[i - 1].0 != '=' => depth -= 1,
            ',' if depth == 0 => {
                chunks.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < e {
        chunks.push((start, e));
    }
    let mut out = Vec::new();
    for &(cs, ce) in &chunks {
        // Name pattern ends at the top-level `:` (not `::`).
        let mut depth = 0i32;
        let mut colon = ce;
        let mut j = cs;
        while j < ce {
            let c = stream[j].0;
            match c {
                '(' | '[' | '<' => depth += 1,
                ')' | ']' | '>' => depth -= 1,
                ':' if depth == 0 => {
                    if stream.get(j + 1).map(|&(c, _)| c) == Some(':') {
                        j += 2;
                        continue;
                    }
                    colon = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let names = idents_in(stream, cs, colon);
        if colon == ce && names.is_empty() {
            // Receiver chunk (`&mut self`): no argument position.
            continue;
        }
        out.push(names);
    }
    out
}

/// Mark for one loop header: driver-loop identifiers first, then the
/// R5 taint heuristic, then the data class.
fn loop_mark(
    stream: &Stream,
    s: usize,
    e: usize,
    env: &BTreeMap<String, AbsClass>,
    taints: &BTreeSet<String>,
) -> LoopMark {
    let ids = idents_in(stream, s, e);
    if ids.iter().any(|w| w == "max_levels") {
        return LoopMark::Level;
    }
    if ids.iter().any(|w| w == "max_inner_iterations") {
        return LoopMark::Iteration;
    }
    if expr_tainted(stream, s, e, taints) {
        return LoopMark::Tainted;
    }
    LoopMark::Data(expr_class(stream, s, e, env))
}

/// Find the first `{` at paren/bracket nesting depth 0 in `[s, e)`.
fn brace_at_depth0(stream: &Stream, s: usize, e: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = s;
    while i < e {
        match stream[i].0 {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Build the cost summary of `stream[s..e)`. Linear walk: branches
/// flatten, loops recurse, `emit_with` argument spans are skipped
/// entirely (tracing closures never run in a production build), call
/// sites are recorded with their argument classes and then walked
/// *through* so nested calls and sites are still seen.
fn walk_cost(
    stream: &Stream,
    s: usize,
    e: usize,
    env: &BTreeMap<String, AbsClass>,
    taints: &BTreeSet<String>,
    ordinal: &mut usize,
) -> Vec<CNode> {
    let mut out = Vec::new();
    let mut i = s;
    while i < e {
        if keyword_at(stream, i, "for") {
            // `for <pat> in <header> {`
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut in_at = None;
            while j < e {
                match stream[j].0 {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => break,
                    _ => {}
                }
                if depth == 0 && keyword_at(stream, j, "in") {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            let (hdr_s, open) = match in_at {
                Some(at) => match brace_at_depth0(stream, at + 2, e) {
                    Some(open) => (at + 2, open),
                    None => {
                        i += 3;
                        continue;
                    }
                },
                None => {
                    i += 3;
                    continue;
                }
            };
            let mark = loop_mark(stream, hdr_s, open, env, taints);
            let end = block_end(stream, open);
            let body = walk_cost(
                stream,
                open + 1,
                end.saturating_sub(1),
                env,
                taints,
                ordinal,
            );
            out.push(CNode::Loop { mark, body });
            i = end;
            continue;
        }
        if keyword_at(stream, i, "while") {
            let Some(open) = brace_at_depth0(stream, i + 5, e) else {
                i += 5;
                continue;
            };
            // A `while` trip count is opaque to the quantity seeds:
            // tainted conditions are an R5-class hazard, everything
            // else is conservatively unknown-bounded.
            let mark = if expr_tainted(stream, i + 5, open, taints) {
                LoopMark::Tainted
            } else {
                LoopMark::Data(AbsClass::default())
            };
            let end = block_end(stream, open);
            let body = walk_cost(
                stream,
                open + 1,
                end.saturating_sub(1),
                env,
                taints,
                ordinal,
            );
            out.push(CNode::Loop { mark, body });
            i = end;
            continue;
        }
        if keyword_at(stream, i, "loop") {
            let open = skip_ws(stream, i + 4);
            if stream.get(open).map(|&(c, _)| c) == Some('{') {
                let end = block_end(stream, open);
                let body = walk_cost(
                    stream,
                    open + 1,
                    end.saturating_sub(1),
                    env,
                    taints,
                    ordinal,
                );
                out.push(CNode::Loop {
                    mark: LoopMark::Data(AbsClass::default()),
                    body,
                });
                i = end;
                continue;
            }
            i = open;
            continue;
        }
        let c = stream[i].0;
        if is_ident_char(c) && !prev_is_ident(stream, i) {
            let w = read_word(stream, i);
            let after = skip_ws(stream, i + w.len());
            let open = (stream.get(after).map(|&(c, _)| c) == Some('(')).then_some(after);
            if w == "emit_with" {
                if let Some(open) = open {
                    i = match_paren(stream, open);
                    continue;
                }
            }
            if let (Some(open), false) = (open, is_keyword(&w)) {
                let method = i > 0 && stream[i - 1].0 == '.';
                let close = match_paren(stream, open);
                let args = split_args(stream, open + 1, close.saturating_sub(1));
                if let (Some(vec_payload), true) = (site_op(&w), method) {
                    let line = stream[i].1;
                    let (payload, keyed) = if w == "send_keyed" {
                        // Coalescing bounds a phase's volume by the
                        // distinct keys, overriding the loop structure.
                        let key = args
                            .get(1)
                            .map(|&(s, e)| expr_class(stream, s, e, env))
                            .unwrap_or_default();
                        (key, true)
                    } else if w == "send" {
                        (AbsClass::known(PayloadClass::O1), false)
                    } else if vec_payload {
                        let buf = match args.first() {
                            Some(&(s, e)) if is_array_literal(stream, s, e) => {
                                AbsClass::known(PayloadClass::O1)
                            }
                            Some(&(s, e)) => expr_class(stream, s, e, env),
                            None => AbsClass::default(),
                        };
                        (buf, false)
                    } else {
                        (AbsClass::known(PayloadClass::O1), false)
                    };
                    out.push(CNode::Site {
                        ordinal: *ordinal,
                        op: w,
                        payload,
                        keyed,
                        line,
                    });
                    *ordinal += 1;
                    i = close;
                    continue;
                }
                let arg_classes = args
                    .iter()
                    .map(|&(s, e)| expr_class(stream, s, e, env))
                    .collect();
                out.push(CNode::Call {
                    name: w.clone(),
                    method,
                    args: arg_classes,
                });
                // Walk *into* the argument span so nested calls/sites
                // are still summarized in caller context.
                i = open + 1;
                continue;
            }
            i += w.len().max(1);
            continue;
        }
        i += 1;
    }
    out
}

/// One analyzed function: its summary tree plus the environments the
/// site classes were computed under.
struct CFn {
    def: FnDef,
    params: Vec<Vec<String>>,
    tree: Vec<CNode>,
}

struct CFile {
    path: String,
    fns: Vec<CFn>,
}

/// Build the per-function environment: parameters are parametric (with
/// a seed bound when their name is a recognized quantity), then the
/// assignment fixpoint propagates classes through `let`/`for` patterns
/// and compound assignments. Seeds are immutable.
fn build_env(stream: &Stream, f: &FnDef, params: &[Vec<String>]) -> BTreeMap<String, AbsClass> {
    let mut env: BTreeMap<String, AbsClass> = BTreeMap::new();
    for names in params {
        for n in names {
            let mut a = AbsClass {
                base: seed_class(n),
                params: BTreeSet::new(),
            };
            a.params.insert(n.clone());
            env.insert(n.clone(), a);
        }
    }
    let body = (f.body_open + 1, f.body_end.saturating_sub(1));
    let assigns = collect_assignments(stream, body.0, body.1);
    for _ in 0..16 {
        let mut changed = false;
        for a in &assigns {
            let cls = expr_class(stream, a.rhs.0, a.rhs.1, &env);
            if cls.is_unknown() {
                continue;
            }
            for l in &a.lhs {
                if seed_class(l).is_some() {
                    continue;
                }
                let entry = env.entry(l.clone()).or_default();
                let before = entry.clone();
                entry.join(&cls);
                changed |= *entry != before;
            }
        }
        if !changed {
            break;
        }
    }
    env
}

fn analyze_cost_stream(path: &str, stream: &Stream) -> CFile {
    let fns = extract_fns(stream);
    let mut out = Vec::new();
    for f in fns {
        let params = param_names(stream, &f);
        let env = build_env(stream, &f, &params);
        let taints = taint_set(stream, f.body_open + 1, f.body_end.saturating_sub(1));
        let mut ordinal = 0usize;
        let tree = walk_cost(
            stream,
            f.body_open + 1,
            f.body_end.saturating_sub(1),
            &env,
            &taints,
            &mut ordinal,
        );
        out.push(CFn {
            def: f,
            params,
            tree,
        });
    }
    CFile {
        path: path.to_string(),
        fns: out,
    }
}

// ---------------------------------------------------------------------------
// Site resolution (shared by the spec walk and rule M1).
// ---------------------------------------------------------------------------

/// Resolve an abstract class against a caller binding: the ground base
/// joined with every *bound* parameter; `None` when nothing resolves.
fn resolve_abs(a: &AbsClass, binding: &BTreeMap<String, PayloadClass>) -> Option<PayloadClass> {
    let mut acc = a.base;
    for p in &a.params {
        if let Some(&c) = binding.get(p) {
            acc = Some(acc.map_or(c, |x| x.max(c)));
        }
    }
    acc
}

/// Is this site's payload `Unbounded` under the optimistic rule? Unbound
/// parameters are assumed caller-bounded; only a fully unknown
/// component (no base, no parameter provenance) is a defect.
fn site_unbounded(payload: &AbsClass, keyed: bool, data_marks: &[AbsClass]) -> bool {
    let data_unknown = data_marks.iter().any(AbsClass::is_unknown);
    if keyed {
        // A recognized key bounds the phase regardless of the loops.
        payload.is_unknown() && data_unknown
    } else {
        payload.is_unknown() || data_unknown
    }
}

// ---------------------------------------------------------------------------
// Lint rules M1 / A1 (single-file mode).
// ---------------------------------------------------------------------------

fn m1_walk(nodes: &[CNode], data: &mut Vec<AbsClass>, out: &mut Vec<ProtocolFinding>) {
    for n in nodes {
        match n {
            CNode::Site {
                op,
                payload,
                keyed,
                line,
                ..
            } => {
                if site_unbounded(payload, *keyed, data) {
                    out.push(ProtocolFinding {
                        line: *line,
                        rule: Rule::M1,
                        message: format!(
                            "collective payload classified `Unbounded`: this `{op}` ships a \
                             volume derived from no recognized solver quantity (bound the \
                             buffer or loop by a seeded/parametric quantity, or extend the \
                             seed table in crates/xtask/src/costgraph.rs)"
                        ),
                    });
                }
            }
            CNode::Loop { mark, body } => {
                if let LoopMark::Data(a) = mark {
                    data.push(a.clone());
                    m1_walk(body, data, out);
                    data.pop();
                } else {
                    m1_walk(body, data, out);
                }
            }
            CNode::Call { .. } => {}
        }
    }
}

/// Locate every `emit_with(..)` argument span and classify it:
/// `Some(true)` for `Event::Enter`, `Some(false)` for `Event::Exit`,
/// `None` for counters and other events. Shared by the A1 and X1
/// passes, which both reason about `Enter`-to-`Exit` traced regions.
fn emit_spans(stream: &Stream) -> Vec<(usize, usize, Option<bool>)> {
    let mut spans: Vec<(usize, usize, Option<bool>)> = Vec::new(); // (open, close, enter?)
    let mut i = 0usize;
    while i < stream.len() {
        if is_ident_char(stream[i].0) && !prev_is_ident(stream, i) {
            let w = read_word(stream, i);
            if w == "emit_with" {
                let after = skip_ws(stream, i + w.len());
                if stream.get(after).map(|&(c, _)| c) == Some('(') {
                    let close = match_paren(stream, after);
                    let mut kind = None;
                    let mut j = after;
                    while j + 1 < close {
                        if stream[j].0 == ':' && stream[j + 1].0 == ':' {
                            let name = read_word(stream, skip_ws(stream, j + 2));
                            if name == "Enter" {
                                kind = Some(true);
                                break;
                            }
                            if name == "Exit" {
                                kind = Some(false);
                                break;
                            }
                        }
                        j += 1;
                    }
                    spans.push((after, close, kind));
                    i = close;
                    continue;
                }
            }
            i += w.len().max(1);
            continue;
        }
        i += 1;
    }
    spans
}

/// Rule A1: per-iteration allocation inside a traced phase region.
/// Lexical pass: regions are `emit_with(.. Event::Enter ..)` to the
/// next `emit_with(.. Event::Exit ..)`; inside, any loop body that
/// binds `Vec::new()`/`vec![]` and grows it with `push`/`extend`
/// without an intervening `reserve` is a hot-path allocation.
fn check_a1(stream: &Stream) -> Vec<ProtocolFinding> {
    let spans = emit_spans(stream);
    let in_emit_span = |pos: usize| spans.iter().any(|&(s, e, _)| pos >= s && pos < e);
    let mut out = Vec::new();
    for (ei, &(_, enter_end, kind)) in spans.iter().enumerate() {
        if kind != Some(true) {
            continue;
        }
        let Some(&(exit_start, _, _)) = spans[ei + 1..].iter().find(|&&(_, _, k)| k == Some(false))
        else {
            continue;
        };
        // Scan the bracketed region for loops.
        let mut i = enter_end;
        while i < exit_start {
            let is_loop = keyword_at(stream, i, "for")
                || keyword_at(stream, i, "while")
                || keyword_at(stream, i, "loop");
            if !is_loop {
                i += 1;
                continue;
            }
            let Some(open) = brace_at_depth0(stream, i + 3, exit_start) else {
                i += 3;
                continue;
            };
            let end = block_end(stream, open).min(exit_start);
            check_a1_loop_body(
                stream,
                open + 1,
                end.saturating_sub(1),
                &in_emit_span,
                &mut out,
            );
            // Step inside: nested loops get their own scan.
            i = open + 1;
        }
    }
    out
}

fn check_a1_loop_body(
    stream: &Stream,
    s: usize,
    e: usize,
    in_emit_span: &dyn Fn(usize) -> bool,
    out: &mut Vec<ProtocolFinding>,
) {
    let mut i = s;
    while i < e {
        if !keyword_at(stream, i, "let") || in_emit_span(i) {
            i += 1;
            continue;
        }
        // `let <pat> = Vec::new()` / `= vec![]` (empty literal only).
        let mut j = i + 3;
        let mut depth = 0i32;
        let mut eq = None;
        while j < e {
            match stream[j].0 {
                '(' | '[' | '<' => depth += 1,
                ')' | ']' => depth -= 1,
                '>' if stream[j - 1].0 != '-' && stream[j - 1].0 != '=' => depth -= 1,
                '=' if depth == 0 && stream.get(j + 1).map(|&(c, _)| c) != Some('=') => {
                    eq = Some(j);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i += 3;
            continue;
        };
        let names = idents_in(stream, i + 3, eq);
        let Some(name) = names.first() else {
            i = eq + 1;
            continue;
        };
        let r = skip_ws(stream, eq + 1);
        let empty_vec_new = matches_at(stream, r, "Vec")
            && matches_at(stream, skip_ws(stream, r + 3), "::")
            && matches_at(stream, skip_ws(stream, skip_ws(stream, r + 3) + 2), "new");
        let vec_macro_at = matches_at(stream, r, "vec")
            && stream.get(skip_ws(stream, r + 3)).map(|&(c, _)| c) == Some('!');
        let empty_vec_macro = vec_macro_at && {
            let bang = skip_ws(stream, r + 3);
            let open = skip_ws(stream, bang + 1);
            stream.get(open).map(|&(c, _)| c) == Some('[')
                && stream.get(skip_ws(stream, open + 1)).map(|&(c, _)| c) == Some(']')
        };
        if !empty_vec_new && !empty_vec_macro {
            i = eq + 1;
            continue;
        }
        // Growth without a dominating reserve, outside tracing spans.
        let stmt_end = expr_stmt_end(stream, eq + 1, e);
        let mut grown = None;
        let mut k = stmt_end;
        while k < e {
            if let Some(m) = method_on(stream, k, name) {
                if (m == "push" || m == "extend") && !in_emit_span(k) {
                    grown = Some(k);
                    break;
                }
                if m == "reserve" || m == "reserve_exact" {
                    break;
                }
            }
            k += 1;
        }
        if grown.is_some() {
            out.push(ProtocolFinding {
                line: stream[i].1,
                rule: Rule::A1,
                message: format!(
                    "`{name}` is allocated with `Vec::new`/`vec![]` and grown inside a loop \
                     of a traced phase region: this allocates every iteration on the hot \
                     path (hoist the buffer out of the loop, or size it up front with \
                     `with_capacity`/`reserve`)"
                ),
            });
        }
        i = stmt_end;
    }
}

/// The call names rule X1 treats as checkpoint I/O: the
/// `CheckpointStore` slot surface plus the solver's serialization
/// helpers. `checkpoint_due` is deliberately absent — the cadence
/// predicate is pure arithmetic and is *expected* inside the driver
/// loop.
const X1_CHECKPOINT_IO: [&str; 4] = [
    "save_slot",
    "read_slot",
    "write_level_checkpoint",
    "take_resume_state",
];

/// Rule X1: no checkpoint I/O inside a traced phase region. Regions
/// are the same `Event::Enter`-to-`Event::Exit` brackets the A1 pass
/// scans; inside one, any call to the checkpoint surface
/// ([`X1_CHECKPOINT_IO`]) serializes rank state on the measured hot
/// path and skews the per-phase clock attribution (Figure 8). The
/// solver takes checkpoints at level boundaries, after the
/// reconstruction `Exit` — this rule keeps it that way.
fn check_x1(stream: &Stream) -> Vec<ProtocolFinding> {
    let spans = emit_spans(stream);
    let mut out = Vec::new();
    for (ei, &(_, enter_end, kind)) in spans.iter().enumerate() {
        if kind != Some(true) {
            continue;
        }
        let Some(&(exit_start, _, _)) = spans[ei + 1..].iter().find(|&&(_, _, k)| k == Some(false))
        else {
            continue;
        };
        let mut i = enter_end;
        while i < exit_start {
            if !is_ident_char(stream[i].0) || prev_is_ident(stream, i) {
                i += 1;
                continue;
            }
            let w = read_word(stream, i);
            let after = skip_ws(stream, i + w.len());
            let is_call = stream.get(after).map(|&(c, _)| c) == Some('(');
            if is_call && X1_CHECKPOINT_IO.contains(&w.as_str()) {
                out.push(ProtocolFinding {
                    line: stream[i].1,
                    rule: Rule::X1,
                    message: format!(
                        "checkpoint I/O `{w}(..)` inside a traced phase region: \
                         serializing rank state between `Event::Enter` and \
                         `Event::Exit` charges bookkeeping to the phase clock and \
                         distorts the per-phase breakdown (move the call to the \
                         level boundary, outside every traced bracket)"
                    ),
                });
            }
            i += w.len().max(1);
        }
    }
    out
}

/// First `;` at depth 0 after `s` (statement end), capped at `e`.
fn expr_stmt_end(stream: &Stream, s: usize, e: usize) -> usize {
    let mut depth = 0i32;
    let mut i = s;
    while i < e {
        match stream[i].0 {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    e
}

/// If `stream[i..]` is `<name>.<method>(`, return the method name.
fn method_on(stream: &Stream, i: usize, name: &str) -> Option<String> {
    if !matches_at(stream, i, name) || prev_is_ident(stream, i) {
        return None;
    }
    let after = i + name.len();
    if stream.get(after).map(|&(c, _)| c) != Some('.') {
        return None;
    }
    let m = read_word(stream, after + 1);
    if m.is_empty() {
        return None;
    }
    let paren = skip_ws(stream, after + 1 + m.len());
    if stream.get(paren).map(|&(c, _)| c) == Some('(') {
        Some(m)
    } else {
        None
    }
}

/// Run the cost checks (M1 payload classification, A1 hot-loop
/// allocation, X1 checkpoint placement) over one file's stripped
/// stream. Same-file scope only — the interprocedural mode is the spec
/// extraction.
pub(crate) fn check_stream_cost(stream: &Stream) -> Vec<ProtocolFinding> {
    let file = analyze_cost_stream("", stream);
    let mut out = Vec::new();
    for f in &file.fns {
        m1_walk(&f.tree, &mut Vec::new(), &mut out);
    }
    out.extend(check_a1(stream));
    out.extend(check_x1(stream));
    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

// ---------------------------------------------------------------------------
// The workspace cost spec.
// ---------------------------------------------------------------------------

/// One classified communication site of the committed spec. Fields are
/// public so the conformance tests can build seeded mutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostSite {
    /// Stable identity: `<file>::<fn>#<source-order ordinal>`.
    pub site: String,
    /// The collective/exchange method classified at this site.
    pub op: String,
    /// Payload bound (a [`PayloadClass`] spelling).
    pub payload: String,
    /// Invocation multiplicity (a [`Multiplicity`] spelling).
    pub multiplicity: String,
}

/// The schema-versioned communication-cost spec, the `xtask cost`
/// lockfile (`results/cost_spec.json`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostSpec {
    /// `file::fn` of the analysis entry point.
    pub entry: String,
    /// Every reachable communication site, sorted by (file, fn, ordinal).
    pub sites: Vec<CostSite>,
}

impl CostSpec {
    /// Byte-stable serialization: fixed field order, 2-space indent,
    /// trailing newline — the committed artifact `xtask cost --check`
    /// byte-compares.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {COST_SPEC_SCHEMA_VERSION},\n"
        ));
        s.push_str(&format!("  \"entry\": \"{}\",\n", self.entry));
        s.push_str("  \"sites\": [\n");
        for (i, site) in self.sites.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"site\": \"{}\",\n", site.site));
            s.push_str(&format!("      \"op\": \"{}\",\n", site.op));
            s.push_str(&format!("      \"payload\": \"{}\",\n", site.payload));
            s.push_str(&format!(
                "      \"multiplicity\": \"{}\"\n",
                site.multiplicity
            ));
            s.push_str(if i + 1 == self.sites.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Aggregated classification of one site across all call paths.
struct SiteAgg {
    op: String,
    payload: PayloadClass,
    mult: Multiplicity,
}

struct CostAnalysis {
    files: Vec<CFile>,
}

impl CostAnalysis {
    /// Resolve a callee: same-file definitions win, then the workspace;
    /// receiver-ness prefers matching `self`-ness; ambiguity (several
    /// remaining candidates) makes the callee opaque rather than
    /// guessing.
    fn resolve(&self, fi: usize, name: &str, method: bool) -> Option<(usize, usize)> {
        let pick = |cands: Vec<(usize, usize)>| -> Option<(usize, usize)> {
            let (with_self, without): (Vec<_>, Vec<_>) = cands
                .into_iter()
                .partition(|&(f, g)| self.files[f].fns[g].def.has_self);
            let (preferred, fallback) = if method {
                (with_self, without)
            } else {
                (without, with_self)
            };
            let cands = if preferred.is_empty() {
                fallback
            } else {
                preferred
            };
            match cands.len() {
                1 => Some(cands[0]),
                _ => None,
            }
        };
        let same: Vec<(usize, usize)> = (0..self.files[fi].fns.len())
            .filter(|&g| self.files[fi].fns[g].def.name == name)
            .map(|g| (fi, g))
            .collect();
        if !same.is_empty() {
            return pick(same);
        }
        let global: Vec<(usize, usize)> = (0..self.files.len())
            .flat_map(|f| {
                (0..self.files[f].fns.len())
                    .filter(move |&g| self.files[f].fns[g].def.name == name)
                    .map(move |g| (f, g))
            })
            .collect();
        pick(global)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_nodes(
        &self,
        fi: usize,
        gi: usize,
        nodes: &[CNode],
        binding: &BTreeMap<String, PayloadClass>,
        data: &mut Vec<AbsClass>,
        inherited: &[PayloadClass],
        mult: Multiplicity,
        stack: &mut Vec<(usize, usize)>,
        out: &mut BTreeMap<(String, String, usize), SiteAgg>,
    ) {
        for n in nodes {
            match n {
                CNode::Site {
                    ordinal,
                    op,
                    payload,
                    keyed,
                    ..
                } => {
                    let data_join = |acc: PayloadClass| {
                        let mut p = acc;
                        for d in data.iter() {
                            p = p.max(resolve_abs(d, binding).unwrap_or(PayloadClass::Unbounded));
                        }
                        p
                    };
                    let mut p = if *keyed {
                        match resolve_abs(payload, binding) {
                            Some(c) => c,
                            None => data_join(PayloadClass::O1),
                        }
                    } else {
                        data_join(resolve_abs(payload, binding).unwrap_or(PayloadClass::Unbounded))
                    };
                    for &c in inherited {
                        p = p.max(c);
                    }
                    let file = &self.files[fi];
                    let key = (file.path.clone(), file.fns[gi].def.name.clone(), *ordinal);
                    let agg = out.entry(key).or_insert_with(|| SiteAgg {
                        op: op.clone(),
                        payload: PayloadClass::O1,
                        mult: Multiplicity::PerRun,
                    });
                    agg.payload = agg.payload.max(p);
                    agg.mult = agg.mult.max(mult);
                }
                CNode::Loop { mark, body } => match mark {
                    LoopMark::Level => self.walk_nodes(
                        fi,
                        gi,
                        body,
                        binding,
                        data,
                        inherited,
                        mult.max(Multiplicity::PerLevel),
                        stack,
                        out,
                    ),
                    LoopMark::Iteration => self.walk_nodes(
                        fi,
                        gi,
                        body,
                        binding,
                        data,
                        inherited,
                        mult.max(Multiplicity::PerIteration),
                        stack,
                        out,
                    ),
                    LoopMark::Tainted => self.walk_nodes(
                        fi,
                        gi,
                        body,
                        binding,
                        data,
                        inherited,
                        Multiplicity::RankTainted,
                        stack,
                        out,
                    ),
                    LoopMark::Data(a) => {
                        data.push(a.clone());
                        self.walk_nodes(fi, gi, body, binding, data, inherited, mult, stack, out);
                        data.pop();
                    }
                },
                CNode::Call {
                    name, method, args, ..
                } => {
                    let Some((cfi, cgi)) = self.resolve(fi, name, *method) else {
                        continue;
                    };
                    if stack.contains(&(cfi, cgi)) {
                        continue;
                    }
                    let callee = &self.files[cfi].fns[cgi];
                    let mut child_binding = BTreeMap::new();
                    for (pos, names) in callee.params.iter().enumerate() {
                        if let Some(arg) = args.get(pos) {
                            if let Some(c) = resolve_abs(arg, binding) {
                                for n in names {
                                    child_binding.insert(n.clone(), c);
                                }
                            }
                        }
                    }
                    // Data loops around the call keep multiplying the
                    // callee's volume: pass them down resolved.
                    let mut child_inherited = inherited.to_vec();
                    for d in data.iter() {
                        child_inherited
                            .push(resolve_abs(d, binding).unwrap_or(PayloadClass::Unbounded));
                    }
                    stack.push((cfi, cgi));
                    self.walk_nodes(
                        cfi,
                        cgi,
                        &self.files[cfi].fns[cgi].tree.clone(),
                        &child_binding,
                        &mut Vec::new(),
                        &child_inherited,
                        mult,
                        stack,
                        out,
                    );
                    stack.pop();
                }
            }
        }
    }
}

/// Extract the workspace cost spec: classify every communication site
/// reachable from the solver entry point, joined over all call paths.
///
/// # Errors
/// I/O failures or a missing entry point abort the extraction.
pub fn extract_cost_spec(root: &Path) -> Result<CostSpec, String> {
    let mut files = Vec::new();
    for dir in COST_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk(&abs, &mut paths).map_err(|e| format!("walking {dir}: {e}"))?;
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&p).map_err(|e| format!("reading {rel}: {e}"))?;
            let lines = scan_lines(&src);
            let mask = test_region_mask(&lines);
            let stream = code_stream_masked(&lines, &mask);
            files.push(analyze_cost_stream(&rel, &stream));
        }
    }
    let an = CostAnalysis { files };
    let fi = an
        .files
        .iter()
        .position(|f| f.path == PROTOCOL_ENTRY_FILE)
        .ok_or_else(|| format!("entry file `{PROTOCOL_ENTRY_FILE}` not found"))?;
    let gi = an.files[fi]
        .fns
        .iter()
        .position(|g| g.def.name == PROTOCOL_ENTRY_FN)
        .ok_or_else(|| {
            format!("entry `{PROTOCOL_ENTRY_FN}` not found in `{PROTOCOL_ENTRY_FILE}`")
        })?;
    let mut out = BTreeMap::new();
    let mut stack = vec![(fi, gi)];
    an.walk_nodes(
        fi,
        gi,
        &an.files[fi].fns[gi].tree.clone(),
        &BTreeMap::new(),
        &mut Vec::new(),
        &[],
        Multiplicity::PerRun,
        &mut stack,
        &mut out,
    );
    let sites = out
        .into_iter()
        .map(|((file, fn_name, ordinal), agg)| CostSite {
            site: format!("{file}::{fn_name}#{ordinal}"),
            op: agg.op,
            payload: agg.payload.as_str().to_string(),
            multiplicity: agg.mult.as_str().to_string(),
        })
        .collect();
    Ok(CostSpec {
        entry: format!("{PROTOCOL_ENTRY_FILE}::{PROTOCOL_ENTRY_FN}"),
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{code_stream_masked, scan_lines, test_region_mask};

    fn stream_of(src: &str) -> Vec<(char, usize)> {
        let lines = scan_lines(src);
        let mask = test_region_mask(&lines);
        code_stream_masked(&lines, &mask)
    }

    fn findings_of(src: &str) -> Vec<(usize, Rule)> {
        check_stream_cost(&stream_of(src))
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn payload_lattice_order_matches_volume_order() {
        assert!(PayloadClass::O1 < PayloadClass::ODeltas);
        assert!(PayloadClass::ODeltas < PayloadClass::OFrontier);
        assert!(PayloadClass::OFrontier < PayloadClass::ONLocal);
        assert!(PayloadClass::ONLocal < PayloadClass::OLocalArcs);
        assert!(PayloadClass::OLocalArcs < PayloadClass::Unbounded);
        assert!(Multiplicity::PerRun < Multiplicity::PerLevel);
        assert!(Multiplicity::PerLevel < Multiplicity::PerIteration);
        assert!(Multiplicity::PerIteration < Multiplicity::RankTainted);
    }

    #[test]
    fn send_in_seeded_loop_is_bounded_and_clean() {
        let src = r"
fn f(ctx: &mut Ctx, out_table: &Table) {
    let mut ex = ctx.exchange();
    for (key, w) in out_table.iter() {
        ex.send(0, key);
    }
    ex.finish(|_| {});
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn send_in_unrecognized_loop_fires_m1() {
        let src = r"
fn f(ctx: &mut Ctx) {
    let mut ex = ctx.exchange();
    for x in mystery_frontier.iter() {
        ex.send(0, x);
    }
    ex.finish(|_| {});
}
";
        assert_eq!(findings_of(src), vec![(5, Rule::M1)]);
    }

    #[test]
    fn keyed_send_with_recognized_key_overrides_loop_class() {
        // The keyed site rides in an O(local_arcs) loop but dedups by a
        // delta-derived key: bounded, no M1.
        let src = r"
fn f(ctx: &mut Ctx, migrated: &[(u32, u32)], out_srcs: &[u32]) {
    let mut ex = ctx.exchange();
    for &(u, c) in migrated {
        for &s in out_srcs.iter() {
            ex.send_keyed(0, u64::from(u), c);
        }
    }
    ex.finish(|_| {});
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn vec_collective_with_unrecognized_buffer_fires_m1() {
        let src = r"
fn f(ctx: &mut Ctx) {
    let gathered = ctx.allgather_f64(&scratchpad);
}
";
        assert_eq!(findings_of(src), vec![(3, Rule::M1)]);
    }

    #[test]
    fn array_literal_buffer_is_o1() {
        let src = r"
fn f(ctx: &mut Ctx, owned: &[u32]) {
    let counts = ctx.allgather_f64(&[owned.len() as f64]);
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn unbound_parameter_is_optimistically_clean() {
        // `buffer` is not a seed, but it is a parameter: the caller is
        // assumed to pass something bounded (M1 stays quiet, like the
        // call-results-are-replicated fiat in the taint analysis).
        let src = r"
fn gather(ctx: &mut Ctx, buffer: &[f64]) -> Vec<f64> {
    ctx.allgather_f64(buffer)
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn alloc_grown_in_traced_loop_fires_a1() {
        let src = r#"
fn f(ctx: &mut Ctx, edges: &[u32]) {
    louvain_trace::emit_with(|| Event::Enter { phase: "refine", clock: 0 });
    for e in edges.iter() {
        let mut acc = Vec::new();
        acc.push(e);
        consume(acc);
    }
    louvain_trace::emit_with(|| Event::Exit { phase: "refine", clock: 0 });
}
"#;
        assert_eq!(findings_of(src), vec![(5, Rule::A1)]);
    }

    #[test]
    fn reserve_before_growth_suppresses_a1() {
        let src = r#"
fn f(ctx: &mut Ctx, edges: &[u32]) {
    louvain_trace::emit_with(|| Event::Enter { phase: "refine", clock: 0 });
    for e in edges.iter() {
        let mut acc = Vec::new();
        acc.reserve(8);
        acc.push(e);
        consume(acc);
    }
    louvain_trace::emit_with(|| Event::Exit { phase: "refine", clock: 0 });
}
"#;
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn alloc_outside_traced_region_is_not_a1() {
        let src = r"
fn f(edges: &[u32]) {
    for e in edges.iter() {
        let mut acc = Vec::new();
        acc.push(e);
        consume(acc);
    }
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn emit_with_closure_allocations_are_skipped() {
        // Allocations inside tracing closures never run in production
        // builds: neither M1 nor A1 may fire on them.
        let src = r#"
fn f(ctx: &mut Ctx, edges: &[u32]) {
    louvain_trace::emit_with(|| Event::Enter { phase: "x", clock: 0 });
    for e in edges.iter() {
        louvain_trace::emit_with(|| {
            let mut dbg = Vec::new();
            dbg.push(e);
            Event::Count { name: "n", value: dbg.len() as u64 }
        });
        work(e);
    }
    louvain_trace::emit_with(|| Event::Exit { phase: "x", clock: 0 });
}
"#;
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn labeled_break_does_not_confuse_the_walker() {
        let src = r"
fn f(ctx: &mut Ctx, edges: &[u32]) {
    let mut ex = ctx.exchange();
    'outer: for e in edges.iter() {
        for d in edges.iter() {
            if d == e {
                break 'outer;
            }
            ex.send(0, d);
        }
    }
    ex.finish(|_| {});
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn while_loop_with_send_is_unbounded() {
        let src = r"
fn f(ctx: &mut Ctx) {
    let mut ex = ctx.exchange();
    while has_work() {
        ex.send(0, 1);
    }
    ex.finish(|_| {});
}
";
        assert_eq!(findings_of(src), vec![(5, Rule::M1)]);
    }

    #[test]
    fn assignment_fixpoint_propagates_classes() {
        // `snapshot` inherits O(n_local) from `labels` through a `let`,
        // so the allgather is bounded.
        let src = r"
fn f(ctx: &mut Ctx, labels: &[f64]) {
    let snapshot = labels.to_vec();
    let gathered = ctx.allgather_f64(&snapshot);
}
";
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn checkpoint_io_inside_traced_region_fires_x1() {
        let src = r#"
fn f(ctx: &mut Ctx, store: &CheckpointStore) {
    louvain_trace::emit_with(|| Event::Enter { phase: "refine", clock: 0 });
    let bytes = store.save_slot(&cp);
    louvain_trace::emit_with(|| Event::Exit { phase: "refine", clock: 0 });
}
"#;
        assert_eq!(findings_of(src), vec![(4, Rule::X1)]);
    }

    #[test]
    fn checkpoint_helper_call_inside_traced_region_fires_x1() {
        let src = r#"
fn f(ctx: &mut Ctx, store: &CheckpointStore) {
    louvain_trace::emit_with(|| Event::Enter { phase: "reconstruction", clock: 0 });
    let bytes = write_level_checkpoint(store, ctx);
    louvain_trace::emit_with(|| Event::Exit { phase: "reconstruction", clock: 0 });
}
"#;
        assert_eq!(findings_of(src), vec![(4, Rule::X1)]);
    }

    #[test]
    fn checkpoint_io_outside_traced_region_is_clean() {
        // The sanctioned placement: cadence predicate inside the loop,
        // I/O after the phase Exit — exactly the level-boundary hook.
        let src = r#"
fn f(ctx: &mut Ctx, store: &CheckpointStore) {
    louvain_trace::emit_with(|| Event::Enter { phase: "refine", clock: 0 });
    work(ctx);
    louvain_trace::emit_with(|| Event::Exit { phase: "refine", clock: 0 });
    if checkpoint_due(cfg, level_idx) {
        let bytes = write_level_checkpoint(store, ctx);
    }
}
"#;
        assert_eq!(findings_of(src), Vec::new());
    }

    #[test]
    fn spec_json_is_byte_stable_and_versioned() {
        let spec = CostSpec {
            entry: "a.rs::main".to_string(),
            sites: vec![
                CostSite {
                    site: "a.rs::main#0".to_string(),
                    op: "send".to_string(),
                    payload: "O(local_arcs)".to_string(),
                    multiplicity: "per_run".to_string(),
                },
                CostSite {
                    site: "a.rs::main#1".to_string(),
                    op: "allreduce_sum".to_string(),
                    payload: "O(1)".to_string(),
                    multiplicity: "per_level".to_string(),
                },
            ],
        };
        let j = spec.to_json();
        assert_eq!(j, spec.to_json());
        assert!(j.starts_with("{\n  \"schema_version\": 2,\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"site\": \"a.rs::main#0\""));
        assert!(j.contains("\"payload\": \"O(local_arcs)\""));
        assert!(j.contains("\"multiplicity\": \"per_level\""));
    }
}
