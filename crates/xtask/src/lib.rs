//! `louvain-lint`: workspace-specific static analysis.
//!
//! The paper's headline claims (ε-thresholded convergence in Section IV,
//! the reproducible scaling numbers of Section V-B) hold only if the
//! reproduction is actually deterministic and floating-point-sound. This
//! crate enforces the invariants that protect those claims as named,
//! suppressible lint rules over every `.rs` file in the workspace:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in deterministic solver/metrics paths (`crates/core`, `crates/metrics`): randomized hashers iterate in nondeterministic order |
//! | `F1` | no `==`/`!=` against floating-point literals outside the approved epsilon helpers (`dq.rs`, `modularity.rs`) |
//! | `F2` | no manual `(x << 32) | y` / `key >> 32` id packing outside `crates/hashtable/src/key.rs` |
//! | `U1` | every `unsafe` block carries a `// SAFETY:` comment |
//! | `P1` | no `.unwrap()` / `.expect(..)` in non-test library code of `crates/{core,runtime,hashtable,graph}` |
//! | `C1` | every crate root keeps `#![warn(missing_docs)]` and a paper-section cross-reference |
//! | `R1` | every `ctx.exchange()` phase reaches exactly one `.finish(..)` on all control-flow paths — no `return`, `?`, or loop-escaping `break`/`continue` can leak an open phase |
//! | `R2` | no collective (`barrier`, `allreduce_*`, `allgather_*`, `exchange`, …) inside a conditional that branches on rank-local data (`rank` in the condition): all ranks must enter every collective |
//! | `R3` | no raw `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` atomics outside `crates/runtime` — cross-rank communication goes through the runtime API |
//! | `R4` | the arms of a rank-divergent conditional (condition tainted by rank-local data, tracked through assignments) must have equal protocol effect — no arm-specific collective sequences, no divergent early exits that skip collectives other ranks still run |
//! | `R5` | no collective inside a loop whose trip count derives from rank-local data — iteration bounds must come from replicated/allreduced values so all ranks run the same number of collective rounds |
//! | `T1` | no wall-clock reads (`Instant::now`, `SystemTime::now`) on traced solver/runtime paths (`crates/{core,runtime,trace}`) outside the sanctioned `crates/core/src/timing.rs` module — wall time must never reach a deterministic trace or `BENCH_*.json` |
//! | `M1` | no collective/exchange site whose payload classifies `Unbounded` in the cost analysis — every shipped buffer or loop-driven send volume must trace to a recognized solver quantity (deltas, n_local, local_arcs, a constant, or a parameter) |
//! | `A1` | no `Vec::new()`/`vec![]` grown with `push`/`extend` inside a loop of a traced (`Event::Enter`/`Event::Exit`-bracketed) phase region — per-iteration allocation on the measured hot path |
//! | `X1` | no checkpoint I/O (`save_slot`/`read_slot`/the checkpoint serialization helpers) inside a traced phase region — rank-state serialization is level-boundary bookkeeping and must not be charged to a phase's clock |
//! | `SUP` | every suppression comment carries a non-empty reason |
//!
//! Suppress a finding with a comment of the form `lint: allow(D1) — reason`
//! (any rule id in the parentheses) on the same line or the line above; the
//! reason text is mandatory (`SUP` fires on bare suppressions). The pass is
//! std-only and token/line-based (no `syn`), so it runs in the fully
//! offline build container.
//!
//! `lint --json` reports carry a `schema_version` field
//! ([`JSON_SCHEMA_VERSION`]) so downstream consumers of
//! `results/lint_baseline.json` can detect format changes, plus a
//! `bench_snapshot_schema_version` field
//! ([`BENCH_SNAPSHOT_SCHEMA_VERSION`]) republishing the schema of the
//! `BENCH_louvain.json` perf snapshot (DESIGN.md §9), and a
//! `protocol_spec_schema_version` field
//! ([`PROTOCOL_SPEC_SCHEMA_VERSION`]) for the protocol-spec lockfile.
//!
//! Beyond the per-file rules, [`phasegraph`] extracts the workspace's
//! *collective protocol* interprocedurally — the ordered
//! sequence/branch/loop structure of collectives reachable from the
//! solver entry point — and emits it as the committed
//! `results/protocol_spec.json` lockfile (`xtask protocol`, DESIGN.md
//! §11). The R4/R5 rules above are the per-file face of that analysis.
//!
//! [`costgraph`] is the third leg of the verifier stack (ordering →
//! determinism → volume): it classifies every collective/exchange site
//! reachable from the same entry point with a symbolic payload bound
//! and invocation multiplicity, committed as `results/cost_spec.json`
//! (`xtask cost`, DESIGN.md §12) and conformance-checked against the
//! runtime trace counters. M1/A1 are its per-file face.

#![warn(missing_docs)]

pub mod costgraph;
pub mod lint;
pub mod phasegraph;

pub use costgraph::{
    extract_cost_spec, CostSite, CostSpec, Multiplicity, PayloadClass, COST_SPEC_SCHEMA_VERSION,
};
pub use lint::{
    lint_source, lint_workspace, Finding, Rule, BENCH_SNAPSHOT_SCHEMA_VERSION, JSON_SCHEMA_VERSION,
};
pub use phasegraph::{
    extract_protocol_spec, Nfa, ProtocolSpec, SpecNode, PROTOCOL_SPEC_SCHEMA_VERSION,
};
