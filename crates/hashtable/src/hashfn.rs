//! The four hash-function families compared in Section V-C1 of the paper.
//!
//! All functions map a 64-bit packed edge key to a bin index in `[0, m)`.
//! The paper's conclusion — that Fibonacci hashing and linear congruential
//! hashing load-balance far better than bitwise or concatenated hashing on
//! R-MAT edge keys — is reproduced by `louvain-bench fig6`.
//!
//! The mapping to `[0, m)` uses the "multiply-shift" range reduction
//! `(h as u128 * m as u128) >> 64`, which is the modern, division-free
//! equivalent of the `⌊M/W · (x mod W)⌋` scaling in Equation 6 and works for
//! arbitrary (non power-of-two) table sizes.

/// A stateless hash function from 64-bit keys to bin indices.
pub trait HashFn64: Clone + Send + Sync {
    /// Hashes `key` into `[0, m)`. `m` must be non-zero.
    fn bin(&self, key: u64, m: usize) -> usize;

    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;
}

/// Range reduction: scale a full-width 64-bit hash down to `[0, m)`.
///
/// Equivalent to Equation 6's `⌊M/W · x⌋` for `x` uniform in `[0, W)`.
#[inline(always)]
fn reduce(h: u64, m: usize) -> usize {
    debug_assert!(m > 0, "table size must be non-zero");
    ((h as u128 * m as u128) >> 64) as usize
}

/// Fibonacci hashing (Knuth; Equation 6 of the paper).
///
/// `H(x) = ⌊M/W · ((φ⁻¹ · W · x) mod W)⌋` with `W = 2^64`.  The constant
/// `0x9E37_79B9_7F4A_7C15` is `⌊φ⁻¹ · 2^64⌋` (φ the golden ratio), so the
/// wrapping multiply computes `(φ⁻¹ · W · x) mod W` exactly and `reduce`
/// applies the `M/W` scaling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FibonacciHash;

/// `⌊φ⁻¹ · 2^64⌋` where φ is the golden ratio.
pub const FIB_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

impl HashFn64 for FibonacciHash {
    #[inline(always)]
    fn bin(&self, key: u64, m: usize) -> usize {
        reduce(key.wrapping_mul(FIB_MULTIPLIER), m)
    }

    fn name(&self) -> &'static str {
        "fibonacci"
    }
}

/// Linear congruential hashing: `h = (a·x + c) mod 2^64`, then range-reduce.
///
/// Uses Knuth's MMIX multiplier. The paper found this competitive with
/// Fibonacci hashing (Section V-C1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LcgHash {
    /// Multiplier (odd). Default: Knuth's MMIX constant.
    pub a: u64,
    /// Additive constant. Default: MMIX increment.
    pub c: u64,
}

impl Default for LcgHash {
    fn default() -> Self {
        Self {
            a: 6_364_136_223_846_793_005,
            c: 1_442_695_040_888_963_407,
        }
    }
}

impl HashFn64 for LcgHash {
    #[inline(always)]
    fn bin(&self, key: u64, m: usize) -> usize {
        reduce(key.wrapping_mul(self.a).wrapping_add(self.c), m)
    }

    fn name(&self) -> &'static str {
        "lcg"
    }
}

/// Bitwise (xor-fold) hashing: fold the two key halves with shifts and XORs.
///
/// Cheap but structure-preserving — R-MAT keys share high/low bit patterns,
/// so this clusters badly. Included as one of the rejected alternatives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitwiseHash;

impl HashFn64 for BitwiseHash {
    #[inline(always)]
    fn bin(&self, key: u64, m: usize) -> usize {
        let mut h = key;
        h ^= h >> 33;
        h ^= h << 21;
        h ^= h >> 17;
        // No multiply: the whole point of the comparison is that pure
        // bit-mixing without diffusion across all 64 bits is weaker.
        (h % m as u64) as usize
    }

    fn name(&self) -> &'static str {
        "bitwise"
    }
}

/// Concatenated hashing: use the packed key directly, `bin = key mod m`.
///
/// This is the "concatenated hash" straw-man of Section V-C1: the packed
/// `(t1 << k) | t2` key modulo the table size, which makes the bin depend
/// almost entirely on the low identifier and load-balances poorly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcatHash;

impl HashFn64 for ConcatHash {
    #[inline(always)]
    fn bin(&self, key: u64, m: usize) -> usize {
        (key % m as u64) as usize
    }

    fn name(&self) -> &'static str {
        "concat"
    }
}

/// Runtime-selectable hash function (used by benchmarks and the binned
/// analysis table, where the function is chosen from the command line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashKind {
    /// [`FibonacciHash`]
    Fibonacci,
    /// [`LcgHash`] with default constants
    Lcg,
    /// [`BitwiseHash`]
    Bitwise,
    /// [`ConcatHash`]
    Concat,
}

impl HashKind {
    /// All four variants, in the order the paper discusses them.
    pub const ALL: [HashKind; 4] = [
        HashKind::Concat,
        HashKind::Lcg,
        HashKind::Bitwise,
        HashKind::Fibonacci,
    ];
}

impl HashFn64 for HashKind {
    #[inline(always)]
    fn bin(&self, key: u64, m: usize) -> usize {
        match self {
            HashKind::Fibonacci => FibonacciHash.bin(key, m),
            HashKind::Lcg => LcgHash::default().bin(key, m),
            HashKind::Bitwise => BitwiseHash.bin(key, m),
            HashKind::Concat => ConcatHash.bin(key, m),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            HashKind::Fibonacci => "fibonacci",
            HashKind::Lcg => "lcg",
            HashKind::Bitwise => "bitwise",
            HashKind::Concat => "concat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_range<H: HashFn64>(h: &H) {
        for m in [1usize, 2, 3, 7, 64, 1000, 1 << 20] {
            for key in [0u64, 1, 2, u64::MAX, 0xDEAD_BEEF, 1 << 63] {
                let b = h.bin(key, m);
                assert!(b < m, "{}: bin {b} out of range for m={m}", h.name());
            }
        }
    }

    #[test]
    fn all_functions_stay_in_range() {
        in_range(&FibonacciHash);
        in_range(&LcgHash::default());
        in_range(&BitwiseHash);
        in_range(&ConcatHash);
        for k in HashKind::ALL {
            in_range(&k);
        }
    }

    #[test]
    fn fibonacci_is_deterministic() {
        let h = FibonacciHash;
        assert_eq!(h.bin(42, 1024), h.bin(42, 1024));
    }

    #[test]
    fn fibonacci_spreads_sequential_keys() {
        // The defining property of Fibonacci hashing: consecutive keys land
        // far apart. With m=1024, consecutive keys should not cluster into
        // adjacent bins.
        let h = FibonacciHash;
        let m = 1024;
        let bins: Vec<usize> = (0..16u64).map(|k| h.bin(k, m)).collect();
        let mut sorted = bins.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "collisions among 16 keys in 1024 bins");
        // No two consecutive keys in adjacent bins.
        for w in bins.windows(2) {
            assert!(w[0].abs_diff(w[1]) > 1);
        }
    }

    #[test]
    fn concat_preserves_low_bits() {
        // The straw-man behaviour: keys differing only above m collide.
        let h = ConcatHash;
        assert_eq!(h.bin(5, 100), 5);
        assert_eq!(h.bin(105, 100), 5);
    }

    #[test]
    fn fibonacci_balances_better_than_concat_on_structured_keys() {
        // Keys shaped like packed edges: (u << 32) | v where only a few
        // distinct low identifiers occur — exactly the structure that makes
        // the concatenated hash (key mod m) collapse onto few bins.
        let m = 256;
        let keys: Vec<u64> = (0..4096u64).map(|i| ((i / 4) << 32) | (i % 4)).collect();
        let occupancy = |h: &dyn Fn(u64) -> usize| {
            let mut c = vec![0usize; m];
            for &k in &keys {
                c[h(k)] += 1;
            }
            *c.iter().max().unwrap()
        };
        let fib_max = occupancy(&|k| FibonacciHash.bin(k, m));
        let concat_max = occupancy(&|k| ConcatHash.bin(k, m));
        assert!(
            fib_max < concat_max,
            "fib max bin {fib_max} should beat concat {concat_max}"
        );
    }

    #[test]
    fn hashkind_matches_concrete_impls() {
        for key in [0u64, 17, u64::MAX / 3] {
            assert_eq!(
                HashKind::Fibonacci.bin(key, 777),
                FibonacciHash.bin(key, 777)
            );
            assert_eq!(
                HashKind::Lcg.bin(key, 777),
                LcgHash::default().bin(key, 777)
            );
            assert_eq!(HashKind::Bitwise.bin(key, 777), BitwiseHash.bin(key, 777));
            assert_eq!(HashKind::Concat.bin(key, 777), ConcatHash.bin(key, 777));
        }
    }
}
