//! Packed 64-bit edge keys (Equation 5 of the paper).
//!
//! Both hash tables of the algorithm are *hashed on edges*: the key is a
//! function of a tuple `(t1, t2)`.  For `In_Table` the tuple is
//! `(source vertex, destination vertex)`; for `Out_Table` it is
//! `(source vertex, destination community)`.
//!
//! The paper packs the tuple as `f(t1, t2) = (t1 << 16) | t2` (Equation 5),
//! which is only collision-free for identifiers below 2^16 (resp. 2^48).
//! This crate provides both the literal 16-bit form ([`pack_key16`]) for
//! fidelity and a 32-bit form ([`pack_key`]) that is collision-free for the
//! full `u32` identifier space used throughout this reproduction.

/// Packs two 32-bit identifiers into a single collision-free 64-bit key:
/// `(t1 << 32) | t2`.
///
/// This is the key used by every table in the reproduction.  It is the
/// natural widening of Equation 5 to 32-bit vertex identifiers.
#[inline(always)]
#[must_use]
pub fn pack_key(t1: u32, t2: u32) -> u64 {
    ((t1 as u64) << 32) | t2 as u64
}

/// Inverse of [`pack_key`].
#[inline(always)]
#[must_use]
pub fn unpack_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// The literal key function of Equation 5: `(t1 << 16) | t2`.
///
/// Only collision-free when `t2 < 2^16`; provided for fidelity experiments
/// and for the concatenated-hash comparison of Section V-C1 (where the raw
/// packed key is used directly as the bin index).
#[inline(always)]
#[must_use]
pub fn pack_key16(t1: u64, t2: u64) -> u64 {
    (t1 << 16) | (t2 & 0xFFFF)
}

/// Inverse of [`pack_key16`] (the low 16 bits are `t2`).
#[inline(always)]
#[must_use]
pub fn unpack_key16(key: u64) -> (u64, u64) {
    (key >> 16, key & 0xFFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(a, b) in &[(0u32, 0u32), (1, 2), (u32::MAX, u32::MAX), (7, u32::MAX)] {
            assert_eq!(unpack_key(pack_key(a, b)), (a, b));
        }
    }

    #[test]
    fn pack16_matches_equation5() {
        // (3 << 16) | 5
        assert_eq!(pack_key16(3, 5), 0x0003_0005);
        assert_eq!(unpack_key16(0x0003_0005), (3, 5));
    }

    #[test]
    fn pack_key_is_injective_on_distinct_tuples() {
        let tuples = [(1u32, 2u32), (2, 1), (0, 3), (3, 0), (1, 1)];
        for (i, &a) in tuples.iter().enumerate() {
            for &b in tuples.iter().skip(i + 1) {
                assert_ne!(pack_key(a.0, a.1), pack_key(b.0, b.1));
            }
        }
    }

    #[test]
    fn pack16_truncates_high_bits_of_t2() {
        // t2 ≥ 2^16 collides by design; document the behaviour.
        assert_eq!(pack_key16(1, 0x1_0005), pack_key16(1, 5));
    }
}
