//! The open-addressing, linear-probing edge table (`In_Table` / `Out_Table`).
//!
//! Both tables of the parallel Louvain algorithm have the same shape: keys
//! are packed edge tuples ([`crate::key::pack_key`]) and the value is an
//! accumulated weight.  Insertion follows Algorithms 3 and 5 of the paper:
//!
//! > *if ∃ ((u,c), w') ∈ Table then w' ← w' + w; else place the triple with
//! > linear probing.*
//!
//! The table supports O(1) amortized insert-or-accumulate, lookup, a
//! sequential scan over occupied slots, and a bulk `reset` that reuses the
//! allocation — the operation that makes "rewriting the whole graph from
//! scratch each outer loop" cheap.

use crate::hashfn::{FibonacciHash, HashFn64};
use crate::stats::{OccupancyStats, ProbeStats};

/// Sentinel marking an empty slot. Real keys never use this value because
/// vertex/community identifiers are `u32`s strictly below `u32::MAX`.
const EMPTY: u64 = u64::MAX;

/// Default maximum load factor before the table grows.
///
/// The paper selects 1/4 as "a good compromise between speed and memory
/// requirements" (Section V-C2, Figure 6d).
pub const DEFAULT_MAX_LOAD: f64 = 0.25;

/// An open-addressing hash table from packed 64-bit edge keys to
/// accumulated `f64` weights, with linear probing.
///
/// ```
/// use louvain_hash::{EdgeTable, pack_key};
///
/// let mut out_table = EdgeTable::new(64);
/// // Two edges from vertex 3 into community 9 accumulate into w_{3->9}.
/// out_table.accumulate(pack_key(3, 9), 1.0);
/// out_table.accumulate(pack_key(3, 9), 2.5);
/// assert_eq!(out_table.get(pack_key(3, 9)), Some(3.5));
/// assert_eq!(out_table.len(), 1);
/// out_table.reset(); // the cheap outer-loop rewrite
/// assert!(out_table.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct EdgeTable<H: HashFn64 = FibonacciHash> {
    keys: Vec<u64>,
    weights: Vec<f64>,
    len: usize,
    hash: H,
    max_load: f64,
    // Lifetime probe counters for benchmark reporting.
    probes: u64,
    operations: u64,
    max_probe: u64,
}

impl EdgeTable<FibonacciHash> {
    /// Creates a table with Fibonacci hashing sized for `expected` entries
    /// at the default 1/4 load factor.
    #[must_use]
    pub fn new(expected: usize) -> Self {
        Self::with_hash_and_load(expected, FibonacciHash, DEFAULT_MAX_LOAD)
    }
}

impl<H: HashFn64> EdgeTable<H> {
    /// Creates a table sized for `expected` entries at load factor
    /// `max_load` (clamped to `(0, 0.9]`), using hash function `hash`.
    #[must_use]
    pub fn with_hash_and_load(expected: usize, hash: H, max_load: f64) -> Self {
        let max_load = max_load.clamp(0.05, 0.9);
        let cap = (((expected.max(1) as f64) / max_load).ceil() as usize).max(8);
        Self {
            keys: vec![EMPTY; cap],
            weights: vec![0.0; cap],
            len: 0,
            hash,
            max_load,
            probes: 0,
            operations: 0,
            max_probe: 0,
        }
    }

    /// Number of occupied slots (distinct keys).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current load factor `len / capacity`.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.keys.len() as f64
    }

    /// Mean number of slots inspected per operation over the table's
    /// lifetime (1.0 = every operation hit its home slot).
    #[must_use]
    pub fn mean_probe_length(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.probes as f64 / self.operations as f64
        }
    }

    /// Extra slots inspected beyond each operation's home slot over the
    /// table's lifetime: `probes - operations`. Zero means every
    /// operation resolved at its hashed slot.
    #[must_use]
    pub fn collisions(&self) -> u64 {
        self.probes - self.operations
    }

    /// Longest probe sequence any single operation has walked (0 for an
    /// untouched table; 1 means no operation ever left its home slot).
    #[must_use]
    pub fn max_probe_length(&self) -> u64 {
        self.max_probe
    }

    /// Snapshot of the lifetime probe counters plus the current load
    /// factor, for the Section V-C1 hash-behavior report.
    #[must_use]
    pub fn probe_stats(&self) -> ProbeStats {
        ProbeStats {
            operations: self.operations,
            probes: self.probes,
            collisions: self.collisions(),
            max_probe_length: self.max_probe,
            mean_probe_length: self.mean_probe_length(),
            load_factor: self.load_factor(),
        }
    }

    /// Inserts `key` with weight `w`, or adds `w` to the existing weight.
    /// Returns `true` if the key was newly inserted.
    pub fn accumulate(&mut self, key: u64, w: f64) -> bool {
        debug_assert_ne!(key, EMPTY, "key value reserved for empty slots");
        if (self.len + 1) as f64 > self.max_load * self.keys.len() as f64 {
            self.grow();
        }
        let cap = self.keys.len();
        let mut slot = self.hash.bin(key, cap);
        self.operations += 1;
        let mut walked = 0u64;
        let inserted = loop {
            walked += 1;
            let k = self.keys[slot];
            if k == key {
                self.weights[slot] += w;
                break false;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.weights[slot] = w;
                self.len += 1;
                break true;
            }
            slot += 1;
            if slot == cap {
                slot = 0;
            }
        };
        self.probes += walked;
        self.max_probe = self.max_probe.max(walked);
        inserted
    }

    /// Looks up the accumulated weight for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<f64> {
        let cap = self.keys.len();
        let mut slot = self.hash.bin(key, cap);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.weights[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot += 1;
            if slot == cap {
                slot = 0;
            }
        }
    }

    /// Sequential scan over the occupied slots as `(key, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys
            .iter()
            .zip(self.weights.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &w)| (k, w))
    }

    /// Empties the table while keeping the allocation — the cheap "delete
    /// the content of the input table" step of the outer loop.
    pub fn reset(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Empties the table and resizes it for `expected` entries if the
    /// current capacity is more than 4x too large or too small.
    pub fn reset_for(&mut self, expected: usize) {
        let want = (((expected.max(1) as f64) / self.max_load).ceil() as usize).max(8);
        let cap = self.keys.len();
        if want > cap || want * 4 < cap {
            self.keys.clear();
            self.keys.resize(want, EMPTY);
            self.weights.clear();
            self.weights.resize(want, 0.0);
            self.len = 0;
        } else {
            self.reset();
        }
    }

    /// Occupancy statistics (entries per slice, probe-cluster lengths) for
    /// the hash-behavior analysis of Figure 6. `slices` models the number
    /// of threads a node's table is partitioned across.
    #[must_use]
    pub fn occupancy_stats(&self, slices: usize) -> OccupancyStats {
        OccupancyStats::from_slots(&self.keys, EMPTY, slices)
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_weights = std::mem::replace(&mut self.weights, vec![0.0; new_cap]);
        self.len = 0;
        for (k, w) in old_keys.into_iter().zip(old_weights) {
            if k != EMPTY {
                // Re-insert without triggering another grow: load halved.
                let cap = self.keys.len();
                let mut slot = self.hash.bin(k, cap);
                loop {
                    if self.keys[slot] == EMPTY {
                        self.keys[slot] = k;
                        self.weights[slot] = w;
                        self.len += 1;
                        break;
                    }
                    slot += 1;
                    if slot == cap {
                        slot = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashfn::{ConcatHash, LcgHash};
    use crate::key::pack_key;

    #[test]
    fn insert_then_get() {
        let mut t = EdgeTable::new(16);
        assert!(t.accumulate(pack_key(1, 2), 1.5));
        assert_eq!(t.get(pack_key(1, 2)), Some(1.5));
        assert_eq!(t.get(pack_key(2, 1)), None);
    }

    #[test]
    fn accumulate_sums_weights() {
        let mut t = EdgeTable::new(16);
        assert!(t.accumulate(pack_key(3, 4), 1.0));
        assert!(!t.accumulate(pack_key(3, 4), 2.5));
        assert_eq!(t.get(pack_key(3, 4)), Some(3.5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = EdgeTable::new(4);
        for i in 0..10_000u32 {
            t.accumulate(pack_key(i, i.wrapping_mul(7)), 1.0);
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(t.get(pack_key(i, i.wrapping_mul(7))), Some(1.0));
        }
        assert!(t.load_factor() <= DEFAULT_MAX_LOAD * 1.01);
    }

    #[test]
    fn reset_empties_but_keeps_capacity() {
        let mut t = EdgeTable::new(100);
        let cap = t.capacity();
        for i in 0..100u32 {
            t.accumulate(pack_key(i, 0), 1.0);
        }
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(pack_key(5, 0)), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn reset_for_shrinks_oversized_tables() {
        let mut t = EdgeTable::new(100_000);
        let big = t.capacity();
        t.reset_for(10);
        assert!(t.capacity() < big / 4);
        assert!(t.is_empty());
        // Still works after resize.
        t.accumulate(pack_key(1, 1), 2.0);
        assert_eq!(t.get(pack_key(1, 1)), Some(2.0));
    }

    #[test]
    fn iter_yields_all_entries_once() {
        let mut t = EdgeTable::new(64);
        for i in 0..50u32 {
            t.accumulate(pack_key(i, i + 1), f64::from(i));
        }
        let mut seen: Vec<(u64, f64)> = t.iter().collect();
        seen.sort_by_key(|&(k, _)| k);
        assert_eq!(seen.len(), 50);
        for (i, &(k, w)) in seen.iter().enumerate() {
            let i = i as u32;
            assert_eq!(k, pack_key(i, i + 1));
            assert_eq!(w, f64::from(i));
        }
    }

    #[test]
    fn works_with_every_hash_function() {
        fn exercise<H: HashFn64>(hash: H) {
            let mut t = EdgeTable::with_hash_and_load(8, hash, 0.5);
            for i in 0..1000u32 {
                t.accumulate(pack_key(i % 100, i / 100), 1.0);
            }
            assert_eq!(t.len(), 1000);
            assert_eq!(t.get(pack_key(42, 3)), Some(1.0));
        }
        exercise(FibonacciHash);
        exercise(LcgHash::default());
        exercise(ConcatHash);
    }

    #[test]
    fn probe_length_reported() {
        let mut t = EdgeTable::new(1000);
        for i in 0..500u32 {
            t.accumulate(pack_key(i, 0), 1.0);
        }
        assert!(t.mean_probe_length() >= 1.0);
        // At load factor 1/4 clustering is mild.
        assert!(t.mean_probe_length() < 2.0, "{}", t.mean_probe_length());
    }

    #[test]
    fn probe_stats_snapshot_is_consistent() {
        let mut t = EdgeTable::new(8);
        assert_eq!(t.probe_stats(), crate::stats::ProbeStats::default());
        for i in 0..200u32 {
            t.accumulate(pack_key(i, 1), 1.0);
            t.accumulate(pack_key(i, 1), 1.0); // accumulate path probes too
        }
        let s = t.probe_stats();
        assert_eq!(s.operations, 400);
        assert!(s.probes >= s.operations);
        assert_eq!(s.collisions, s.probes - s.operations);
        assert!(s.max_probe_length >= 1);
        assert!(s.mean_probe_length >= 1.0);
        assert!((s.load_factor - t.load_factor()).abs() < 1e-15);
        // Every operation's walk is bounded by the recorded maximum.
        assert!(s.max_probe_length <= s.probes);
    }

    #[test]
    fn collisions_zero_when_every_key_hits_home_slot() {
        // A single key accumulated repeatedly always lands on its home
        // slot, so probes == operations.
        let mut t = EdgeTable::new(64);
        for _ in 0..10 {
            t.accumulate(pack_key(7, 7), 1.0);
        }
        assert_eq!(t.collisions(), 0);
        assert_eq!(t.max_probe_length(), 1);
    }

    #[test]
    fn probe_counters_survive_reset() {
        // Lifetime counters cover every outer loop: reset() clears the
        // slots, not the counters.
        let mut t = EdgeTable::new(32);
        for i in 0..20u32 {
            t.accumulate(pack_key(i, 0), 1.0);
        }
        let before = t.probe_stats();
        t.reset();
        let after = t.probe_stats();
        assert_eq!(after.operations, before.operations);
        assert_eq!(after.probes, before.probes);
        assert_eq!(after.load_factor, 0.0);
    }

    #[test]
    fn probe_stats_merge_combines_totals() {
        use crate::stats::ProbeStats;
        let a = ProbeStats {
            operations: 10,
            probes: 15,
            collisions: 5,
            max_probe_length: 3,
            mean_probe_length: 1.5,
            load_factor: 0.2,
        };
        let b = ProbeStats {
            operations: 30,
            probes: 33,
            collisions: 3,
            max_probe_length: 2,
            mean_probe_length: 1.1,
            load_factor: 0.1,
        };
        let m = a.merge(&b);
        assert_eq!(m.operations, 40);
        assert_eq!(m.probes, 48);
        assert_eq!(m.collisions, 8);
        assert_eq!(m.max_probe_length, 3);
        assert!((m.mean_probe_length - 1.2).abs() < 1e-12);
        assert!((m.load_factor - 0.15).abs() < 1e-12);
        // Merge with the identity leaves counters unchanged.
        let id = ProbeStats::default();
        assert_eq!(a.merge(&id).operations, a.operations);
        assert_eq!(a.merge(&id).max_probe_length, a.max_probe_length);
    }

    #[test]
    fn matches_hashmap_model() {
        use std::collections::HashMap;
        let mut model: HashMap<u64, f64> = HashMap::new();
        let mut t = EdgeTable::new(8);
        // Deterministic pseudo-random op sequence.
        let mut x: u64 = 0x1234_5678;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let key = pack_key(((x >> 40) % 512) as u32, ((x >> 20) % 512) as u32);
            let w = ((x % 1000) as f64) / 100.0;
            t.accumulate(key, w);
            *model.entry(key).or_insert(0.0) += w;
        }
        assert_eq!(t.len(), model.len());
        for (&k, &w) in &model {
            let got = t.get(k).expect("missing key");
            assert!((got - w).abs() < 1e-9 * (1.0 + w.abs()));
        }
    }
}
