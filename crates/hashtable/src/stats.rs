//! Statistics for the hash-behavior analysis (Figure 6, Table II).
//!
//! The paper's metrics: *number of hashed entries* (per thread slice),
//! *average bin length* (over non-empty bins only — footnote 3), and
//! *maximum bin length*.

/// Bin-length statistics of a bucketed table (see
/// [`crate::binned::BinnedTable`]).
#[derive(Clone, Debug, PartialEq)]
pub struct BinLengthStats {
    /// Total entries stored.
    pub entries: usize,
    /// Number of bins with at least one entry.
    pub nonempty_bins: usize,
    /// Average length over non-empty bins (footnote 3 of the paper).
    pub avg_bin_length: f64,
    /// Length of the longest bin.
    pub max_bin_length: usize,
}

/// Lifetime probe-behavior snapshot of an open-addressing table
/// ([`crate::table::EdgeTable`]) — the hot-path counters behind the
/// Section V-C1 hash-function comparison.
///
/// All fields are totals since the table was created; [`EdgeTable::reset`]
/// and `reset_for` deliberately do *not* clear them, so a snapshot taken
/// after a solver run covers every outer loop.
///
/// [`EdgeTable::reset`]: crate::table::EdgeTable::reset
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProbeStats {
    /// Insert-or-accumulate operations performed.
    pub operations: u64,
    /// Slots inspected across all operations (≥ `operations`).
    pub probes: u64,
    /// Extra slots inspected beyond the home slot: `probes - operations`.
    pub collisions: u64,
    /// Longest probe sequence any single operation walked.
    pub max_probe_length: u64,
    /// `probes / operations` (0.0 for an untouched table).
    pub mean_probe_length: f64,
    /// Current `len / capacity` at snapshot time.
    pub load_factor: f64,
}

impl ProbeStats {
    /// Combines two snapshots (e.g. the In- and Out-Table of one rank):
    /// counters add, `max_probe_length` takes the maximum, and the derived
    /// ratios are recomputed from the merged totals. `load_factor` is the
    /// unweighted mean of the two — good enough for reporting tables of
    /// similar capacity.
    #[must_use]
    pub fn merge(&self, other: &ProbeStats) -> ProbeStats {
        let operations = self.operations + other.operations;
        let probes = self.probes + other.probes;
        ProbeStats {
            operations,
            probes,
            collisions: probes.saturating_sub(operations),
            max_probe_length: self.max_probe_length.max(other.max_probe_length),
            mean_probe_length: if operations == 0 {
                0.0
            } else {
                probes as f64 / operations as f64
            },
            load_factor: (self.load_factor + other.load_factor) / 2.0,
        }
    }
}

/// Occupancy statistics of an open-addressing table, including per-slice
/// entry counts, where a *slice* models the portion of a node's table
/// assigned to one thread (Figure 6a).
#[derive(Clone, Debug, PartialEq)]
pub struct OccupancyStats {
    /// Entries assigned to each of the `slices` contiguous slot ranges.
    pub entries_per_slice: Vec<usize>,
    /// Number of maximal runs of occupied slots (probe clusters).
    pub clusters: usize,
    /// Average length of the probe clusters (non-empty runs only).
    pub avg_cluster_length: f64,
    /// Longest probe cluster.
    pub max_cluster_length: usize,
}

impl OccupancyStats {
    /// Computes stats from a raw slot array, where `empty` marks free slots.
    #[must_use]
    pub fn from_slots(slots: &[u64], empty: u64, slices: usize) -> Self {
        let slices = slices.max(1);
        let n = slots.len();
        let mut entries_per_slice = vec![0usize; slices];
        for (i, &k) in slots.iter().enumerate() {
            if k != empty {
                // Contiguous slice partition of the slot array.
                let s = i * slices / n.max(1);
                entries_per_slice[s.min(slices - 1)] += 1;
            }
        }
        let mut clusters = 0usize;
        let mut max_cluster_length = 0usize;
        let mut total_cluster_len = 0usize;
        let mut run = 0usize;
        for &k in slots {
            if k != empty {
                run += 1;
            } else if run > 0 {
                clusters += 1;
                total_cluster_len += run;
                max_cluster_length = max_cluster_length.max(run);
                run = 0;
            }
        }
        if run > 0 {
            clusters += 1;
            total_cluster_len += run;
            max_cluster_length = max_cluster_length.max(run);
        }
        let avg_cluster_length = if clusters == 0 {
            0.0
        } else {
            total_cluster_len as f64 / clusters as f64
        };
        Self {
            entries_per_slice,
            clusters,
            avg_cluster_length,
            max_cluster_length,
        }
    }

    /// Total entries across all slices.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.entries_per_slice.iter().sum()
    }

    /// Imbalance = max slice load / mean slice load (1.0 = perfect).
    #[must_use]
    pub fn slice_imbalance(&self) -> f64 {
        let total = self.total_entries();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.entries_per_slice.len() as f64;
        let max = *self.entries_per_slice.iter().max().unwrap_or(&0);
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: u64 = u64::MAX;

    #[test]
    fn empty_table_stats() {
        let s = OccupancyStats::from_slots(&[E, E, E, E], E, 2);
        assert_eq!(s.total_entries(), 0);
        assert_eq!(s.clusters, 0);
        assert_eq!(s.avg_cluster_length, 0.0);
        assert_eq!(s.max_cluster_length, 0);
        assert_eq!(s.slice_imbalance(), 1.0);
    }

    #[test]
    fn clusters_counted_correctly() {
        // Two clusters: lengths 2 and 3.
        let slots = [1, 2, E, 3, 4, 5, E, E];
        let s = OccupancyStats::from_slots(&slots, E, 1);
        assert_eq!(s.clusters, 2);
        assert_eq!(s.max_cluster_length, 3);
        assert!((s.avg_cluster_length - 2.5).abs() < 1e-12);
        assert_eq!(s.total_entries(), 5);
    }

    #[test]
    fn trailing_cluster_counted() {
        let slots = [E, 1, 1, 1];
        let s = OccupancyStats::from_slots(&slots, E, 1);
        assert_eq!(s.clusters, 1);
        assert_eq!(s.max_cluster_length, 3);
    }

    #[test]
    fn slice_partition_covers_all_entries() {
        let slots: Vec<u64> = (0..100).map(|i| if i % 3 == 0 { E } else { i }).collect();
        let s = OccupancyStats::from_slots(&slots, E, 7);
        assert_eq!(s.entries_per_slice.len(), 7);
        assert_eq!(s.total_entries(), slots.iter().filter(|&&k| k != E).count());
    }

    #[test]
    fn imbalance_detects_skew() {
        // All entries in the first half.
        let mut slots = vec![E; 100];
        for s in slots.iter_mut().take(50) {
            *s = 1;
        }
        let s = OccupancyStats::from_slots(&slots, E, 2);
        assert_eq!(s.entries_per_slice, vec![50, 0]);
        assert!((s.slice_imbalance() - 2.0).abs() < 1e-12);
    }
}
