//! A chained-bucket table used for the hash load-balance analysis of
//! Figure 6.
//!
//! The open-addressing [`crate::table::EdgeTable`] is what the algorithm
//! runs on; this *binned* table makes the paper's "bin length" metric
//! directly observable: every key hashes to one of `m` bins and collisions
//! chain inside the bin, so average/maximum bin length measure exactly how
//! well a hash function load-balances — independent of probing policy.

use crate::hashfn::HashFn64;
use crate::stats::BinLengthStats;

/// A hash table with `m` bins, each an in-place chain of `(key, weight)`
/// entries.
#[derive(Clone, Debug)]
pub struct BinnedTable<H: HashFn64> {
    bins: Vec<Vec<(u64, f64)>>,
    len: usize,
    hash: H,
}

impl<H: HashFn64> BinnedTable<H> {
    /// Creates a table with exactly `m` bins (`m ≥ 1`).
    #[must_use]
    pub fn new(m: usize, hash: H) -> Self {
        Self {
            bins: vec![Vec::new(); m.max(1)],
            len: 0,
            hash,
        }
    }

    /// Number of distinct keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Inserts `key` with weight `w`, or accumulates into the existing
    /// entry. Returns `true` if newly inserted.
    pub fn accumulate(&mut self, key: u64, w: f64) -> bool {
        let bin = self.hash.bin(key, self.bins.len());
        let chain = &mut self.bins[bin];
        for entry in chain.iter_mut() {
            if entry.0 == key {
                entry.1 += w;
                return false;
            }
        }
        chain.push((key, w));
        self.len += 1;
        true
    }

    /// Looks up the accumulated weight for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<f64> {
        let bin = self.hash.bin(key, self.bins.len());
        self.bins[bin]
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, w)| w)
    }

    /// Bin-length statistics (Figure 6 b/c/d). Average is over non-empty
    /// bins only, matching footnote 3 of the paper.
    #[must_use]
    pub fn bin_stats(&self) -> BinLengthStats {
        let mut nonempty = 0usize;
        let mut max_len = 0usize;
        let mut total = 0usize;
        for b in &self.bins {
            if !b.is_empty() {
                nonempty += 1;
                total += b.len();
                max_len = max_len.max(b.len());
            }
        }
        BinLengthStats {
            entries: total,
            nonempty_bins: nonempty,
            avg_bin_length: if nonempty == 0 {
                0.0
            } else {
                total as f64 / nonempty as f64
            },
            max_bin_length: max_len,
        }
    }

    /// Entries landing in each of `slices` contiguous bin ranges — the
    /// per-thread entry counts of Figure 6a (bins are partitioned uniformly
    /// across the threads of a node).
    #[must_use]
    pub fn entries_per_slice(&self, slices: usize) -> Vec<usize> {
        let slices = slices.max(1);
        let m = self.bins.len();
        let mut out = vec![0usize; slices];
        for (i, b) in self.bins.iter().enumerate() {
            let s = i * slices / m;
            out[s.min(slices - 1)] += b.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashfn::{ConcatHash, FibonacciHash};
    use crate::key::pack_key;

    #[test]
    fn insert_get_accumulate() {
        let mut t = BinnedTable::new(64, FibonacciHash);
        assert!(t.accumulate(pack_key(1, 2), 1.0));
        assert!(!t.accumulate(pack_key(1, 2), 0.5));
        assert_eq!(t.get(pack_key(1, 2)), Some(1.5));
        assert_eq!(t.get(pack_key(9, 9)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bin_stats_consistent() {
        let mut t = BinnedTable::new(16, FibonacciHash);
        for i in 0..200u32 {
            t.accumulate(pack_key(i, i * 31), 1.0);
        }
        let s = t.bin_stats();
        assert_eq!(s.entries, 200);
        assert!(s.nonempty_bins <= 16);
        assert!(s.max_bin_length >= s.entries / 16);
        assert!(s.avg_bin_length >= 1.0);
        assert!(s.avg_bin_length <= s.max_bin_length as f64);
        // Sum over slices equals total entries.
        let slices = t.entries_per_slice(4);
        assert_eq!(slices.iter().sum::<usize>(), 200);
    }

    #[test]
    fn concat_hash_produces_longer_bins_on_structured_keys() {
        // Structured keys: (u << 32)|v with few distinct v values — the
        // concat hash maps everything by v mod m.
        let m = 1024;
        let mut fib = BinnedTable::new(m, FibonacciHash);
        let mut con = BinnedTable::new(m, ConcatHash);
        for u in 0..2048u32 {
            for v in 0..4u32 {
                fib.accumulate(pack_key(u, v), 1.0);
                con.accumulate(pack_key(u, v), 1.0);
            }
        }
        let (fs, cs) = (fib.bin_stats(), con.bin_stats());
        assert_eq!(fs.entries, cs.entries);
        assert!(
            fs.max_bin_length < cs.max_bin_length,
            "fib {} vs concat {}",
            fs.max_bin_length,
            cs.max_bin_length
        );
    }

    #[test]
    fn one_bin_degenerate_case() {
        let mut t = BinnedTable::new(1, FibonacciHash);
        for i in 0..10u32 {
            t.accumulate(pack_key(i, 0), 1.0);
        }
        let s = t.bin_stats();
        assert_eq!(s.nonempty_bins, 1);
        assert_eq!(s.max_bin_length, 10);
        assert_eq!(s.avg_bin_length, 10.0);
    }
}
