//! The two-table dynamic-graph representation (Section IV-A).
//!
//! The paper's second contribution is the pairing of two hash tables per
//! rank: an immutable *In-Table* holding the graph structure (in-edges of
//! local vertices) and a rebuilt-per-iteration *Out-Table* accumulating
//! per-community weights, such that the whole graph can be "dynamically
//! rewritten from scratch during each iteration of the outer loop...
//! simply deleting the content of the input table and replacing it with
//! the specular image of the output table".
//!
//! [`DualTable`] packages that lifecycle: `in_edges()` for scanning the
//! structure, `out_mut()` for accumulation during a propagation phase,
//! and [`DualTable::promote`] for the outer-loop rewrite (the Out-Table's
//! content becomes the new In-Table via a caller-supplied relabeling, and
//! both tables are reset for the next level).

use crate::hashfn::{FibonacciHash, HashFn64};
use crate::key::{pack_key, unpack_key};
use crate::table::EdgeTable;

/// An In/Out table pair with the outer-loop rewrite lifecycle.
#[derive(Clone, Debug)]
pub struct DualTable<H: HashFn64 = FibonacciHash> {
    input: EdgeTable<H>,
    output: EdgeTable<H>,
}

impl DualTable<FibonacciHash> {
    /// Creates a pair sized for `expected` in-edges (Fibonacci hashing,
    /// default load factor).
    #[must_use]
    pub fn new(expected: usize) -> Self {
        Self {
            input: EdgeTable::new(expected),
            output: EdgeTable::new(expected),
        }
    }
}

impl<H: HashFn64> DualTable<H> {
    /// The immutable In-Table.
    #[must_use]
    pub fn in_table(&self) -> &EdgeTable<H> {
        &self.input
    }

    /// Mutable In-Table access for initial graph loading.
    pub fn in_mut(&mut self) -> &mut EdgeTable<H> {
        &mut self.input
    }

    /// The Out-Table.
    #[must_use]
    pub fn out_table(&self) -> &EdgeTable<H> {
        &self.output
    }

    /// Mutable Out-Table access for a propagation phase.
    pub fn out_mut(&mut self) -> &mut EdgeTable<H> {
        &mut self.output
    }

    /// Resets the Out-Table for a new inner iteration, sized for the
    /// In-Table's population.
    pub fn begin_iteration(&mut self) {
        let expected = self.input.len().max(8);
        self.output.reset_for(expected);
    }

    /// The outer-loop rewrite: replaces the In-Table with the relabeled
    /// image of the Out-Table and clears the Out-Table.
    ///
    /// `relabel` maps each Out-Table entry `(a, b)` to its new-id-space
    /// key (or `None` to drop the entry). Weights of entries mapping to
    /// the same new key accumulate — that is the super-edge aggregation
    /// of Algorithm 5, executed locally.
    pub fn promote<F>(&mut self, mut relabel: F)
    where
        F: FnMut(u32, u32) -> Option<(u32, u32)>,
    {
        let entries: Vec<(u64, f64)> = self.output.iter().collect();
        self.input.reset_for(entries.len().max(8));
        for (key, w) in entries {
            let (a, b) = unpack_key(key);
            if let Some((na, nb)) = relabel(a, b) {
                self.input.accumulate(pack_key(na, nb), w);
            }
        }
        self.output.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_load_propagate_promote() {
        let mut t = DualTable::new(16);
        // Load in-edges: a triangle 0-1-2 viewed from each endpoint.
        for (u, v) in [(0u32, 1u32), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)] {
            t.in_mut().accumulate(pack_key(u, v), 1.0);
        }
        assert_eq!(t.in_table().len(), 6);

        // One propagation: everything lands in community 7.
        t.begin_iteration();
        for (key, w) in t.in_table().iter().collect::<Vec<_>>() {
            let (v, _u) = unpack_key(key);
            t.out_mut().accumulate(pack_key(v, 7), w);
        }
        // Each vertex has w_{v→7} = 2.
        for v in 0..3u32 {
            assert_eq!(t.out_table().get(pack_key(v, 7)), Some(2.0));
        }

        // Promote: all vertices collapse into supervertex 0 → a single
        // self-loop accumulating all weight.
        t.promote(|_a, _b| Some((0, 0)));
        assert_eq!(t.in_table().len(), 1);
        assert_eq!(t.in_table().get(pack_key(0, 0)), Some(6.0));
        assert!(t.out_table().is_empty());
    }

    #[test]
    fn promote_can_drop_entries() {
        let mut t = DualTable::new(8);
        t.out_mut().accumulate(pack_key(1, 2), 1.0);
        t.out_mut().accumulate(pack_key(3, 4), 2.0);
        t.promote(|a, _b| if a == 1 { Some((a, a)) } else { None });
        assert_eq!(t.in_table().len(), 1);
        assert_eq!(t.in_table().get(pack_key(1, 1)), Some(1.0));
    }

    #[test]
    fn begin_iteration_clears_previous_accumulation() {
        let mut t = DualTable::new(8);
        t.in_mut().accumulate(pack_key(0, 1), 1.0);
        t.begin_iteration();
        t.out_mut().accumulate(pack_key(0, 9), 5.0);
        t.begin_iteration();
        assert!(t.out_table().is_empty());
        assert_eq!(t.out_table().get(pack_key(0, 9)), None);
    }
}
