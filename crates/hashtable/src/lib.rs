#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Hash functions and edge hash tables for the parallel Louvain algorithm.
//!
//! This crate implements the *hash-based data organization* of Que et al.,
//! "Scalable Community Detection with the Louvain Algorithm" (IPDPS 2015),
//! Section IV-A:
//!
//! * **Packed edge keys** (Equation 5): a 64-bit key formed from a tuple of
//!   vertex/community identifiers, see [`key`].
//! * **Hash functions** (Section V-C1): Fibonacci hashing (Equation 6),
//!   linear congruential hashing, bitwise hashing and concatenated hashing,
//!   see [`hashfn`].
//! * **Edge tables**: the open-addressing, linear-probing
//!   insert-or-accumulate table used for `In_Table` and `Out_Table`
//!   (Algorithms 3 and 5), see [`table::EdgeTable`].
//! * **Binned tables** used to reproduce the load-balance analysis of
//!   Figure 6 (entries per thread slice, average/maximum bin length),
//!   see [`binned::BinnedTable`].
//!
//! The tables deliberately avoid `std::collections::HashMap`: the paper's
//! central data-structure claim is that a flat, linearly probed table with a
//! cheap multiplicative hash is what makes the dynamic rewriting of the
//! graph (once per outer loop) affordable, and the benchmarks in
//! `louvain-bench` compare exactly that trade-off.

pub mod binned;
pub mod dual;
pub mod hashfn;
pub mod key;
pub mod stats;
pub mod table;

pub use binned::BinnedTable;
pub use dual::DualTable;
pub use hashfn::{BitwiseHash, ConcatHash, FibonacciHash, HashFn64, HashKind, LcgHash};
pub use key::{pack_key, pack_key16, unpack_key, unpack_key16};
pub use stats::{BinLengthStats, OccupancyStats, ProbeStats};
pub use table::EdgeTable;
