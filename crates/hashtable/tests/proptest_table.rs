//! Property-based tests: the EdgeTable must behave exactly like a
//! `HashMap<u64, f64>` under arbitrary accumulate sequences, for every
//! hash function and load factor, including reset cycles.

use louvain_hash::binned::BinnedTable;
use louvain_hash::hashfn::{FibonacciHash, HashFn64, HashKind};
use louvain_hash::table::EdgeTable;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Accumulate(u32, u32, u8),
    Get(u32, u32),
    Reset,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u32..64, 0u32..64, 1u8..10).prop_map(|(a, b, w)| Op::Accumulate(a, b, w)),
        3 => (0u32..64, 0u32..64).prop_map(|(a, b)| Op::Get(a, b)),
        1 => Just(Op::Reset),
    ]
}

fn key(a: u32, b: u32) -> u64 {
    louvain_hash::key::pack_key(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_table_matches_hashmap_model(
        ops in proptest::collection::vec(arb_op(), 1..300),
        kind in prop_oneof![
            Just(HashKind::Fibonacci),
            Just(HashKind::Lcg),
            Just(HashKind::Bitwise),
            Just(HashKind::Concat)
        ],
        load in 0.1f64..0.8,
    ) {
        let mut table = EdgeTable::with_hash_and_load(4, kind, load);
        let mut model: HashMap<u64, f64> = HashMap::new();
        for op in ops {
            match op {
                Op::Accumulate(a, b, w) => {
                    let fresh = table.accumulate(key(a, b), f64::from(w));
                    let was_absent = !model.contains_key(&key(a, b));
                    prop_assert_eq!(fresh, was_absent);
                    *model.entry(key(a, b)).or_insert(0.0) += f64::from(w);
                }
                Op::Get(a, b) => {
                    prop_assert_eq!(table.get(key(a, b)), model.get(&key(a, b)).copied());
                }
                Op::Reset => {
                    table.reset();
                    model.clear();
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final full scan agrees with the model.
        let mut scanned: Vec<(u64, f64)> = table.iter().collect();
        scanned.sort_by_key(|&(k, _)| k);
        let mut expect: Vec<(u64, f64)> = model.into_iter().collect();
        expect.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn binned_table_matches_hashmap_model(
        ops in proptest::collection::vec((0u32..32, 0u32..32, 1u8..5), 1..200),
        bins in 1usize..64,
    ) {
        let mut table = BinnedTable::new(bins, FibonacciHash);
        let mut model: HashMap<u64, f64> = HashMap::new();
        for (a, b, w) in ops {
            table.accumulate(key(a, b), f64::from(w));
            *model.entry(key(a, b)).or_insert(0.0) += f64::from(w);
        }
        prop_assert_eq!(table.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        // Stats consistency: entries across bins equal the model size.
        let st = table.bin_stats();
        prop_assert_eq!(st.entries, model.len());
        prop_assert!(st.max_bin_length >= st.entries.div_ceil(bins));
    }

    #[test]
    fn all_hash_functions_stay_in_range(keys in proptest::collection::vec(any::<u64>(), 1..100), m in 1usize..1_000_000) {
        for kind in HashKind::ALL {
            for &k in &keys {
                prop_assert!(kind.bin(k, m) < m);
            }
        }
    }
}
