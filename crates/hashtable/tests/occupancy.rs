//! EdgeTable occupancy/probe behavior under load — the observable side of
//! the linear-probing design.

use louvain_hash::hashfn::FibonacciHash;
use louvain_hash::key::pack_key;
use louvain_hash::table::EdgeTable;

#[test]
fn occupancy_stats_consistent_with_len() {
    let mut t = EdgeTable::new(10_000);
    for i in 0..10_000u32 {
        t.accumulate(pack_key(i, i.wrapping_mul(13)), 1.0);
    }
    let s = t.occupancy_stats(32);
    assert_eq!(s.total_entries(), t.len());
    assert_eq!(s.entries_per_slice.len(), 32);
    assert!(s.clusters > 0);
    assert!(s.avg_cluster_length >= 1.0);
    assert!(s.max_cluster_length >= s.avg_cluster_length as usize);
}

#[test]
fn probe_length_grows_with_load_factor() {
    let fill = |load: f64| -> f64 {
        let mut t = EdgeTable::with_hash_and_load(1 << 14, FibonacciHash, load);
        // Fill to exactly the allowed load (no growth triggered), with
        // pseudo-random keys: sequential keys would be spread perfectly
        // by the golden-ratio sequence and never collide.
        let n = ((t.capacity() as f64) * load * 0.95) as u64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t.accumulate(x & 0x7FFF_FFFF_FFFF_FFFF, 1.0);
        }
        t.mean_probe_length()
    };
    let sparse = fill(0.125);
    let dense = fill(0.75);
    assert!(
        dense > sparse,
        "probe length must grow with load: {sparse} vs {dense}"
    );
    assert!(sparse < 1.2, "1/8 load should probe ~1: {sparse}");
}

#[test]
fn fibonacci_slices_balanced_on_sequential_keys() {
    // Sequential keys are the adversarial input for identity-like hashes;
    // Fibonacci spreads them uniformly across slices.
    let mut t = EdgeTable::new(50_000);
    for i in 0..50_000u32 {
        t.accumulate(pack_key(0, i), 1.0);
    }
    let s = t.occupancy_stats(16);
    assert!(
        s.slice_imbalance() < 1.15,
        "imbalance {} too high",
        s.slice_imbalance()
    );
}

#[test]
fn reset_for_then_reuse_many_cycles() {
    // The outer-loop lifecycle: shrink/grow across levels without leaks.
    let mut t = EdgeTable::new(8);
    for level in 0..20usize {
        let entries = 1usize << (20usize.saturating_sub(level)).clamp(3, 12);
        t.reset_for(entries);
        for i in 0..entries as u32 {
            t.accumulate(pack_key(i, level as u32), 1.0);
        }
        assert_eq!(t.len(), entries);
        assert!(
            t.load_factor() <= 0.26,
            "level {level}: {}",
            t.load_factor()
        );
    }
}
